"""Ablation — what makes the Table V fusion result tick.

Three sensitivity sweeps over the fusion experiment:

* **embedding source**: trained-GPT embeddings vs random vectors — random
  fusion must not help (the gain is information, not regularization);
* **identity noise**: the BERT stand-in with and without its identity
  noise stays in the same performance tier here (the noise's geometric
  effect is what the Fig 16 benchmark asserts);
* **chemistry signal**: regenerating the dataset with the tier-3
  chemistry term zeroed removes the fusion advantage entirely.
"""

import numpy as np

from conftest import run_once
from repro.core import format_table
from repro.matsci import (GPTFormulaEmbedder, GraphEncoder,
                          MatSciBERTEmbedder, evaluate_model,
                          generate_dataset)
from repro.matsci.embeddings import FormulaEmbedder
from repro.matsci.materials import GapWeights


class RandomEmbedder(FormulaEmbedder):
    """Deterministic per-formula random vectors: identity, no structure."""

    name = "random"
    dim = 64

    def embed(self, formula: str) -> np.ndarray:
        import zlib
        rng = np.random.default_rng(zlib.crc32(formula.encode()))
        return rng.standard_normal(self.dim)


def regenerate(trained_llama, hf_tokenizer):
    encoder = GraphEncoder()
    gpt = GPTFormulaEmbedder(trained_llama, hf_tokenizer)
    out = {}

    ds = generate_dataset(400, seed=0)
    train, test = ds.split(test_fraction=0.2, seed=0)
    base = evaluate_model("mfcgnn", train, test, encoder=encoder,
                          epochs=200, seed=0, n_seeds=2)
    out["structure-only"] = base.test_mae
    for label, embedder in (
            ("+gpt", gpt),
            ("+random", RandomEmbedder()),
            ("+bert-noisy", MatSciBERTEmbedder()),
            ("+bert-no-noise", MatSciBERTEmbedder(identity_noise=0.0))):
        r = evaluate_model(label, train, test, encoder=encoder,
                           embedder=embedder, gnn_name="mfcgnn",
                           epochs=200, seed=0, n_seeds=2)
        out[label] = r.test_mae

    # Zero the tier-3 chemistry term: fusion has nothing left to add.
    ds0 = generate_dataset(400, seed=0,
                           weights=GapWeights(chemistry=0.0))
    train0, test0 = ds0.split(test_fraction=0.2, seed=0)
    out["structure-only (no chem)"] = evaluate_model(
        "mfcgnn", train0, test0, encoder=encoder, epochs=200, seed=0,
        n_seeds=2).test_mae
    out["+gpt (no chem)"] = evaluate_model(
        "+gpt", train0, test0, encoder=encoder, embedder=gpt,
        gnn_name="mfcgnn", epochs=200, seed=0, n_seeds=2).test_mae
    return out


def test_ablation_fusion(benchmark, trained_llama, hf_tokenizer):
    maes = run_once(benchmark,
                    lambda: regenerate(trained_llama, hf_tokenizer))
    print()
    print(format_table(["variant", "test MAE"],
                       [[k, v] for k, v in maes.items()],
                       title="Ablation — fusion sensitivity"))

    # Information matters: trained-GPT embeddings clearly beat random
    # identity vectors, which can only hurt (pure variance).
    assert maes["+gpt"] < maes["+random"] - 0.03
    assert maes["+random"] > maes["structure-only"]
    # The two BERT variants carry the same information tier; at this
    # (reduced, 2-seed) scale their difference is within run noise.  The
    # geometric consequence of the identity noise is asserted separately
    # in the Fig 16 benchmark.
    assert abs(maes["+bert-no-noise"] - maes["+bert-noisy"]) < 0.06
    # With the chemistry tier removed, fusion has nothing to add and its
    # advantage over the structure-only baseline disappears.
    gain_with_chem = maes["structure-only"] - maes["+gpt"]
    gain_without = maes["structure-only (no chem)"] - maes["+gpt (no chem)"]
    assert gain_without < gain_with_chem + 0.02
    assert maes["+gpt (no chem)"] > maes["structure-only (no chem)"] - 0.03

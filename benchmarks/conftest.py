"""Shared fixtures for the table/figure regeneration benchmarks.

Heavy artifacts (trained tiny models, tokenizers, the simulator) are
session-scoped so each benchmark file pays only for what it uses.
"""

import numpy as np
import pytest

from repro.data import AbstractGenerator, PackedDataset
from repro.frontier import MemoryModel, PowerModel, RooflineModel
from repro.models import GPTModel, preset
from repro.parallel import TrainingSimulator
from repro.tokenizers import BPETokenizer, UnigramTokenizer
from repro.training import Trainer, TrainerConfig


@pytest.fixture(scope="session")
def corpus_texts():
    return [d.text for d in AbstractGenerator(seed=0).sample(250,
                                                             materials_fraction=1.0)]


@pytest.fixture(scope="session")
def hf_tokenizer(corpus_texts):
    return BPETokenizer().train(corpus_texts, 512)


@pytest.fixture(scope="session")
def spm_tokenizer(corpus_texts):
    return UnigramTokenizer().train(corpus_texts, 512)


@pytest.fixture(scope="session")
def lm_dataset(corpus_texts, hf_tokenizer):
    return PackedDataset.from_texts(corpus_texts, hf_tokenizer, seq_len=48)


def _train(arch: str, dataset, steps: int = 100) -> GPTModel:
    model = GPTModel(preset(f"tiny-{arch}"), seed=0)
    Trainer(model, dataset, TrainerConfig(
        optimizer="adam", lr=5e-3, batch_size=8, max_steps=steps,
        eval_every=10_000)).train()
    return model


@pytest.fixture(scope="session")
def trained_llama(lm_dataset):
    return _train("llama", lm_dataset)


@pytest.fixture(scope="session")
def trained_neox(lm_dataset):
    return _train("neox", lm_dataset)


@pytest.fixture(scope="session")
def roofline():
    return RooflineModel()


@pytest.fixture(scope="session")
def simulator():
    return TrainingSimulator()


@pytest.fixture(scope="session")
def memory_model():
    return MemoryModel()


@pytest.fixture(scope="session")
def power_model():
    return PowerModel()


def run_once(benchmark, fn):
    """Run a regeneration function exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)

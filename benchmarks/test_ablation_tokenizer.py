"""Ablation — the tokenizer mechanics behind Observation 3.

Measures on the real corpus why losses across tokenizations are
incomparable: HF-BPE and SPM-unigram segment the same text at different
fertilities (tokens per word), and larger vocabularies compress further.
Then checks the direct consequence with really-trained models: the
bits-per-character metric — which *is* tokenization-independent — agrees
across tokenizers far better than perplexity does.
"""

import numpy as np

from conftest import run_once
from repro.core import format_table
from repro.data import AbstractGenerator, PackedDataset, tokenizer_stats
from repro.evalharness import bits_per_character, perplexity
from repro.models import GPTModel, preset
from repro.tokenizers import BPETokenizer, UnigramTokenizer
from repro.training import Trainer, TrainerConfig


def regenerate(corpus_texts):
    sample = corpus_texts[:60]
    tokenizers = {
        "hf-512": BPETokenizer().train(corpus_texts, 512),
        "hf-320": BPETokenizer().train(corpus_texts, 320),
        "spm-512": UnigramTokenizer().train(corpus_texts, 512),
    }
    seg = {name: tokenizer_stats(tok, sample)
           for name, tok in tokenizers.items()}

    held = [d.text for d in AbstractGenerator(seed=77).sample(8)]
    metrics = {}
    for name in ("hf-512", "spm-512"):
        tok = tokenizers[name]
        data = PackedDataset.from_texts(corpus_texts, tok, seq_len=48)
        model = GPTModel(preset("tiny-llama"), seed=0)
        Trainer(model, data, TrainerConfig(
            optimizer="adam", lr=5e-3, batch_size=8, max_steps=80,
            eval_every=10_000)).train()
        metrics[name] = {
            "ppl": perplexity(model, tok, held),
            "bpc": bits_per_character(model, tok, held),
        }
    return seg, metrics


def test_ablation_tokenizer_fertility(benchmark, corpus_texts):
    seg, metrics = run_once(benchmark, lambda: regenerate(corpus_texts))
    print()
    print(format_table(
        ["tokenizer", "fertility", "chars/token", "vocab used"],
        [[name, s.fertility, s.chars_per_token,
          f"{s.vocab_utilization:.0%}"] for name, s in seg.items()],
        title="Ablation — segmentation statistics"))
    print(format_table(
        ["tokenizer", "perplexity", "bits/char"],
        [[name, m["ppl"], m["bpc"]] for name, m in metrics.items()],
        title="trained-model metrics on held-out text"))

    # Larger vocabulary → lower fertility (better compression).
    assert seg["hf-512"].fertility < seg["hf-320"].fertility
    # BPE and unigram segment the same corpus differently.
    assert abs(seg["hf-512"].fertility - seg["spm-512"].fertility) \
        / seg["hf-512"].fertility > 0.05
    # Perplexities across tokenizers diverge far more than BPC does —
    # BPC is the comparable yardstick (Observation 3's resolution).
    ppl_gap = abs(np.log(metrics["hf-512"]["ppl"]) -
                  np.log(metrics["spm-512"]["ppl"]))
    bpc_gap = abs(np.log(metrics["hf-512"]["bpc"]) -
                  np.log(metrics["spm-512"]["bpc"]))
    assert bpc_gap < ppl_gap
    # Both models actually learned (well under the ~vocab-size baseline).
    for m in metrics.values():
        assert m["ppl"] < 200

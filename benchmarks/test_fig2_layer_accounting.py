"""Fig 2 — per-layer parameters and FLOPs of the NeoX and LLaMA layers.

Regenerates the layer accounting for the 1.7B architectures at the
paper's reference point (sequence 2048, batch 16) and checks the figure's
central claims: identical attention blocks, matched parameter/FLOP
budgets, and the LayerNorm-vs-RMSNorm / GELU-vs-SwiGLU differences.
"""

from conftest import run_once
from repro.core import format_table
from repro.models import layer_accounting, preset


def regenerate():
    out = {}
    for arch in ("neox", "llama"):
        cfg = preset(f"{arch}-1.7b-hf-52k")
        out[arch] = layer_accounting(cfg, seq_len=2048, batch_size=16)
    return out


def test_fig2_layer_accounting(benchmark):
    acc = run_once(benchmark, regenerate)
    print()
    rows = []
    for arch, a in acc.items():
        comps = a.flops_by_component()
        rows.append([arch, a.total_params, a.params["attention"],
                     a.params["mlp"], a.params["norms"],
                     f"{a.total_forward_flops / 1e12:.2f}T",
                     f"{comps['mlp'] / 1e12:.2f}T"])
    print(format_table(
        ["arch", "layer params", "attn", "mlp", "norms", "fwd FLOPs",
         "mlp FLOPs"], rows, title="Fig 2 — 1.7B layer, seq 2048, batch 16",
        float_fmt="{:,.0f}"))

    neox, llama = acc["neox"], acc["llama"]
    # "approximately the same number of parameters and FLOPs".
    assert abs(neox.total_params - llama.total_params) / neox.total_params \
        < 0.01
    assert abs(neox.total_forward_flops - llama.total_forward_flops) \
        / neox.total_forward_flops < 0.01
    # "the multi-head attention layers are exactly identical".
    assert neox.attention_flops() == llama.attention_flops()
    assert neox.params["attention"] - llama.params["attention"] == \
        4 * 2304  # only the NeoX biases differ
    # Norm parameterization: LayerNorm (w+b) vs RMSNorm (w only).
    assert neox.params["norms"] == 2 * llama.params["norms"]
    # MLP structure: 2 matrices (NeoX) vs 3 matrices (LLaMA).
    neox_mlp_gemms = [g for g in neox.gemms if g.name == "mlp"]
    llama_mlp_gemms = [g for g in llama.gemms if g.name == "mlp"]
    assert len(neox_mlp_gemms) == 2
    assert len(llama_mlp_gemms) == 3
    # Training FLOPs = 3x forward.
    assert neox.total_training_flops == 3 * neox.total_forward_flops

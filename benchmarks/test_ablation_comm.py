"""Ablation — the large-ring bandwidth degradation drives the Fig 8 shape.

The simulator degrades effective ring bandwidth for system-spanning
collectives beyond 64 ranks (slow-link straggling).  This ablation turns
the degradation off and shows two of Fig 8's signatures disappear: the
ZeRO-1 falloff past 64 GPUs flattens, and the ZeRO/TP=2 crossover at 256
GPUs vanishes — evidence that the mechanism, not a tuned constant, makes
the figure.
"""

from conftest import run_once
from repro.core import format_table
from repro.frontier.hardware import FRONTIER
from repro.models import preset
from repro.parallel import CollectiveModel, ParallelConfig, TrainingSimulator


def regenerate():
    model = preset("neox-6.7b-hf-52k").with_flash(1)
    default = TrainingSimulator()
    no_degradation = TrainingSimulator(
        collectives=CollectiveModel(FRONTIER.node, scale_degradation=0.0))
    rows = []
    for label, sim in (("with degradation", default),
                       ("without degradation", no_degradation)):
        zero64 = sim.per_gcd_tflops(model, ParallelConfig(dp=64, zero_stage=1))
        zero256 = sim.per_gcd_tflops(model,
                                     ParallelConfig(dp=256, zero_stage=1))
        tp256 = sim.per_gcd_tflops(model, ParallelConfig(dp=128, tp=2))
        rows.append([label, zero64, zero256, tp256,
                     zero256 / zero64, tp256 - zero256])
    return rows


def test_ablation_comm_degradation(benchmark):
    rows = run_once(benchmark, regenerate)
    print()
    print(format_table(
        ["model", "ZeRO@64", "ZeRO@256", "TP2@256", "retention",
         "TP2 lead"],
        rows, title="Ablation — ring-bandwidth scale degradation",
        float_fmt="{:.2f}"))

    with_deg = rows[0]
    without = rows[1]
    # With the mechanism: ZeRO loses >15% of its per-GCD throughput from
    # 64 to 256 GPUs (the paper's falloff) and TP=2 leads by a wide margin.
    assert with_deg[4] < 0.90
    assert with_deg[5] > 5.0
    # Without it: the falloff (nearly) disappears and the TP=2 lead
    # shrinks to a sliver — the degradation mechanism makes Fig 8's shape.
    assert without[4] > 0.95
    assert without[5] < 0.5 * with_deg[5]

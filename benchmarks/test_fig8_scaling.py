"""Fig 8 — scaling to 256 GPUs and the rocprof kernel breakdown.

Regenerates (top) the weak-scaling sweeps for 1.7B DP, 6.7B ZeRO-1 and
6.7B TP=2, and (bottom) the compute/communication/IO aggregation at 256
GPUs, checking all the paper's anchors: >18 PFLOPS and ~88% efficiency
for 1.7B DP; ZeRO-1 flat through 64 GPUs then dropping; TP=2 sustaining
~71%+ efficiency and overtaking ZeRO at scale; ZeRO comm ~40%, IO ~5%.
"""

import numpy as np

from conftest import run_once
from repro.core import format_series, format_table
from repro.models import preset
from repro.parallel import ParallelConfig
from repro.profiling import aggregate_step

GPUS = [8, 16, 32, 64, 128, 256]


def regenerate(simulator):
    m17 = preset("neox-1.7b-hf-52k").with_flash(1)
    m67 = preset("neox-6.7b-hf-52k").with_flash(1)
    sweeps = {
        "1.7B DP": simulator.scaling_sweep(m17, "dp", GPUS),
        "6.7B ZeRO-1": simulator.scaling_sweep(m67, "zero1", GPUS),
        "6.7B TP=2": simulator.scaling_sweep(m67, "tp2", GPUS),
    }
    fractions = {
        "1.7B DP": aggregate_step(
            simulator.step(m17, ParallelConfig(dp=256))).fractions(),
        "6.7B ZeRO-1": aggregate_step(
            simulator.step(m67, ParallelConfig(dp=256,
                                               zero_stage=1))).fractions(),
        "6.7B TP=2": aggregate_step(
            simulator.step(m67, ParallelConfig(dp=128, tp=2))).fractions(),
    }
    return sweeps, fractions


def test_fig8_scaling(benchmark, simulator):
    sweeps, fractions = run_once(benchmark, lambda: regenerate(simulator))
    print()
    print(format_series(
        np.array(GPUS),
        {k: np.array([p.per_gcd_tflops for p in v])
         for k, v in sweeps.items()},
        x_label="GPUs", title="Fig 8 (top) — TFLOPS/GCD"))
    print()
    print(format_table(
        ["run", "compute", "comm", "io"],
        [[k, f["compute"], f["comm"], f["io"]]
         for k, f in fractions.items()],
        title="Fig 8 (bottom) — rocprof aggregation at 256 GPUs"))

    dp = {p.n_gpus: p for p in sweeps["1.7B DP"]}
    zero = {p.n_gpus: p for p in sweeps["6.7B ZeRO-1"]}
    tp = {p.n_gpus: p for p in sweeps["6.7B TP=2"]}

    # 1.7B DP: >18 PFLOPS aggregate, high efficiency (paper: 88%).
    assert dp[256].aggregate_pflops > 17.0
    assert dp[256].efficiency > 0.80
    # ZeRO-1: roughly flat to 64 GPUs, then drops (all-device collectives).
    assert zero[64].per_gcd_tflops > 0.97 * zero[16].per_gcd_tflops
    assert zero[256].per_gcd_tflops < 0.90 * zero[64].per_gcd_tflops
    # TP=2 overtakes ZeRO-1 beyond 64 GPUs and sustains efficiency.
    assert tp[256].per_gcd_tflops > zero[256].per_gcd_tflops
    assert tp[256].efficiency > 0.71
    assert zero[64].per_gcd_tflops >= tp[64].per_gcd_tflops - 3.0
    # rocprof shape: ZeRO comm large (~40%), IO ~5%; DP compute-dominated.
    z = fractions["6.7B ZeRO-1"]
    assert 0.25 < z["comm"] < 0.50
    assert 0.02 < z["io"] < 0.08
    assert fractions["1.7B DP"]["comm"] < z["comm"]
    assert fractions["1.7B DP"]["compute"] > 0.75

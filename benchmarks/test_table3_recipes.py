"""Table III — training hyper-parameters, exercised by real optimizers.

Regenerates the recipe table and verifies each row drives a real
training run: the LAMB @ 4M-analogue recipe must reach a lower loss than
Adam @ 1M-analogue on the same tiny model and data (the paper's ~2%
finding, reproduced at reduced scale with proportionally scaled batch
sizes).
"""

import numpy as np

from conftest import run_once
from repro.core import TABLE_III, format_table
from repro.models import GPTModel, preset
from repro.training import Trainer, TrainerConfig

PAPER_ROWS = {("1.7B", "adam"): (0.9, 0.95, 2e-4, 1e6),
              ("1.7B", "lamb"): (0.9, 0.999, 0.01, 4e6),
              ("6.7B", "lamb"): (0.9, 0.999, 0.006, 4e6)}


def regenerate(dataset):
    rows = [[r.model_size, r.optimizer, r.beta1, r.beta2, r.learning_rate,
             f"{r.batch_tokens / 1e6:.0f}M"] for r in TABLE_III]
    # Exercise the optimizer contrast with real training: small batch Adam
    # versus 4x batch LAMB (the paper's 1M vs 4M, scaled down).
    results = {}
    for opt, lr, batch in (("adam", 5e-3, 4), ("lamb", 0.02, 16)):
        model = GPTModel(preset("tiny-llama"), seed=0)
        hist = Trainer(model, dataset, TrainerConfig(
            optimizer=opt, lr=lr, batch_size=batch, max_steps=60,
            eval_every=59)).train()
        results[opt] = hist.final_val_loss
    return rows, results


def test_table3_recipes(benchmark, lm_dataset):
    rows, results = run_once(benchmark, lambda: regenerate(lm_dataset))
    print()
    print(format_table(["model", "optimizer", "b1", "b2", "LR", "BS"],
                       rows, title="Table III", float_fmt="{:.4g}"))
    print(f"real tiny-scale runs: adam/small-batch val "
          f"{results['adam']:.3f}, lamb/4x-batch val {results['lamb']:.3f}")

    for r in TABLE_III:
        b1, b2, lr, bs = PAPER_ROWS[(r.model_size, r.optimizer)]
        assert (r.beta1, r.beta2, r.learning_rate, r.batch_tokens) == \
            (b1, b2, lr, bs)
    # Large-batch LAMB trains competitively with small-batch Adam
    # (within 10%) — the mechanism the paper exploits for scaling.
    assert results["lamb"] < results["adam"] * 1.10

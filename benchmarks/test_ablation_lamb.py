"""Ablation — what LAMB's trust ratio actually does.

LAMB = Adam + a per-tensor trust ratio ``||w|| / ||update||``.  This
ablation exposes the mechanism at tiny scale:

* the ratios *engage* and differ across tensors (layer-wise adaptation,
  the optimizer's namesake feature);
* at fresh-initialization scale the ratios sit below 1 — LAMB is more
  conservative per step than Adam at the same LR, trading early progress
  for the large-batch stability the paper's 4M recipe needs;
* clipping the trust ratio to 1 recovers Adam-like behaviour exactly
  (the two trajectories coincide), proving the ratio is the only
  difference.
"""

import numpy as np

from conftest import run_once
from repro.core import format_table
from repro.models import GPTModel, preset
from repro.training import LAMB, Trainer, TrainerConfig


def _train(lm_dataset, opt, lr, trust=None, steps=40):
    model = GPTModel(preset("tiny-llama"), seed=0)
    trainer = Trainer(model, lm_dataset, TrainerConfig(
        optimizer=opt, lr=lr, batch_size=16, max_steps=steps,
        eval_every=steps - 1))
    if trust is not None:
        assert isinstance(trainer.optimizer, LAMB)
        trainer.optimizer.trust_clip = trust
    hist = trainer.train()
    return trainer, hist


def regenerate(lm_dataset):
    runs = {}
    runs["lamb"] = _train(lm_dataset, "lamb", 0.02)
    runs["lamb-trust-clipped-to-1"] = _train(lm_dataset, "lamb", 0.02,
                                             trust=(1.0, 1.0))
    runs["adam-same-lr"] = _train(lm_dataset, "adam", 0.02)
    return runs


def test_ablation_lamb_trust_ratio(benchmark, lm_dataset):
    runs = run_once(benchmark, lambda: regenerate(lm_dataset))
    print()
    print(format_table(
        ["run", "final train", "final val"],
        [[k, h.final_train_loss, h.final_val_loss]
         for k, (_, h) in runs.items()],
        title="Ablation — LAMB trust ratio (batch 16, LR 0.02)"))

    trainer, lamb_hist = runs["lamb"]
    ratios = np.array(trainer.optimizer.last_trust_ratios)
    print(f"trust ratios: mean {ratios.mean():.3f}, std {ratios.std():.3f}, "
          f"range [{ratios.min():.3f}, {ratios.max():.3f}]")

    # The ratios engage and are tensor-specific (layer-wise adaptation).
    assert (np.abs(ratios - 1.0) > 1e-3).any()
    assert ratios.std() > 1e-3
    # Fresh tiny models have small weight norms → conservative steps.
    assert np.median(ratios) < 1.0
    assert lamb_hist.final_train_loss > \
        runs["adam-same-lr"][1].final_train_loss
    # Clipping the ratio to 1 recovers Adam(β₂=0.999)-like behaviour:
    # nearly identical trajectories, far from full LAMB's.
    clipped = np.array(runs["lamb-trust-clipped-to-1"][1].train_loss)
    adam = np.array(runs["adam-same-lr"][1].train_loss)
    lamb = np.array(lamb_hist.train_loss)
    assert np.abs(clipped - adam).mean() < 0.3
    assert np.abs(lamb - adam).mean() > np.abs(clipped - adam).mean()
    # Everything stays finite (no divergence).
    for _, h in runs.values():
        assert np.isfinite(h.train_loss).all()

"""Ablation — flash-attention tiling must be numerically inert.

The whole premise of Fig 4/5 is that flash attention changes *where* the
computation runs (tiles in SRAM) without changing *what* it computes.
This ablation sweeps block sizes on a real attention workload and checks
bit-level-tight agreement with the naive path, plus the asymmetric
memory-model consequence: block size affects modeled working set, never
results.
"""

import numpy as np

from conftest import run_once
from repro.core import format_table
from repro.models import flash_attention_forward


def reference(q, k, v):
    d = q.shape[-1]
    n = q.shape[-2]
    scores = (q @ np.swapaxes(k, -1, -2)) / np.sqrt(d)
    mask = np.triu(np.ones((n, n), dtype=bool), k=1)
    scores = np.where(mask, -np.inf, scores)
    e = np.exp(scores - scores.max(axis=-1, keepdims=True))
    return (e / e.sum(axis=-1, keepdims=True)) @ v


def regenerate():
    rng = np.random.default_rng(0)
    q, k, v = (rng.normal(size=(2, 4, 96, 16)) for _ in range(3))
    ref = reference(q, k, v)
    rows = []
    for block in (1, 4, 16, 64, 96, 256):
        out = flash_attention_forward(q, k, v, block_size=block)
        err = float(np.abs(out - ref).max())
        rows.append([block, err])
    return rows


def test_ablation_flash_block_size(benchmark):
    rows = run_once(benchmark, regenerate)
    print()
    print(format_table(["block size", "max |err| vs naive"], rows,
                       title="Ablation — flash tiling invariance",
                       float_fmt="{:.2e}"))
    for block, err in rows:
        assert err < 1e-10, f"block {block}: {err}"
    # Results are identical across block sizes too.
    errs = [e for _, e in rows]
    assert max(errs) < 1e-10

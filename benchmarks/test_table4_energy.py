"""Table IV — time and energy for pre-training on 256 GPUs.

Regenerates the table from the simulator: step time → wall-clock for the
full token budget, kernel mix → mean package power → energy and
TFLOPS/W.  The shape checks mirror the paper: 6.7B takes ~4-5x longer
and ~4x more energy than 1.7B, and is less energy-efficient.
"""

from conftest import run_once
from repro.core import format_table
from repro.models import model_flops_per_token, preset
from repro.parallel import ParallelConfig

#: Token budget implied by the paper's reported times and throughputs
#: (~28B tokens ≈ 1.9 epochs of the 15B corpus; see EXPERIMENTS.md).
TOTAL_TOKENS = 28e9


def regenerate(simulator, power_model):
    rows = []
    metrics = {}
    for model, pc, label in (
            (preset("neox-1.7b-hf-52k").with_flash(1),
             ParallelConfig(dp=256), "1.7B"),
            (preset("neox-6.7b-hf-52k").with_flash(1),
             ParallelConfig(dp=256, zero_stage=1), "6.7B")):
        prof = simulator.step(model, pc)
        tflops = simulator.per_gcd_tflops(model, pc)
        steps = TOTAL_TOKENS / (256 * 8 * 2048)
        duration = steps * prof.total_s
        summary = power_model.run_summary(prof.kernel_fractions(),
                                          duration_s=duration, num_gcds=256)
        eff = summary.tflops_per_watt(tflops)
        rows.append([label, 256, duration / 3600, summary.energy_mwh, eff])
        metrics[label] = dict(hours=duration / 3600,
                              mwh=summary.energy_mwh, eff=eff,
                              watts=summary.mean_package_watts)
    return rows, metrics


def test_table4_energy(benchmark, simulator, power_model):
    rows, m = run_once(benchmark,
                       lambda: regenerate(simulator, power_model))
    print()
    print(format_table(
        ["model", "GPUs", "time (h)", "energy (MWh)", "TFLOPS/W"], rows,
        title="Table IV  [paper: 1.7B 4.1h/0.23MWh/0.33; "
              "6.7B 16.5h/0.91MWh/0.27]", float_fmt="{:.2f}"))

    # Absolute ballpark (within ~50% of the paper's testbed numbers).
    assert 2.5 < m["1.7B"]["hours"] < 6.5          # paper 4.1
    assert 12 < m["6.7B"]["hours"] < 28            # paper 16.5
    assert 0.15 < m["1.7B"]["mwh"] < 0.40          # paper 0.23
    assert 0.6 < m["6.7B"]["mwh"] < 1.6            # paper 0.91
    # Shape: the larger model costs ~4-5x more and is less efficient.
    assert 3.0 < m["6.7B"]["hours"] / m["1.7B"]["hours"] < 6.0
    assert 3.0 < m["6.7B"]["mwh"] / m["1.7B"]["mwh"] < 6.0
    assert m["1.7B"]["eff"] > m["6.7B"]["eff"]
    assert 0.25 < m["1.7B"]["eff"] < 0.40          # paper 0.33
    assert 0.20 < m["6.7B"]["eff"] < 0.33          # paper 0.27
    # 6.7B mean package power below 1.7B (more communication stalls).
    assert m["6.7B"]["watts"] < m["1.7B"]["watts"]

"""Fig 15 — few-shot (3 and 5) QA performance for NeoX and LLaMA.

Regenerates the 0/3/5-shot evaluation of the trained tiny models and
checks the paper's findings: prompting with examples helps on some tasks
(SciQ gains up to ~5% in the paper), and overall the two architectures
split the wins roughly evenly.
"""

import numpy as np

from conftest import run_once
from repro.core import format_table
from repro.evalharness import EvalRunner, TASK_NAMES, build_benchmark_suite

SHOTS = (0, 3, 5)


def regenerate(hf_tokenizer, trained_neox, trained_llama):
    runner = EvalRunner(build_benchmark_suite(n_questions=25))
    return {
        "neox": runner.run(trained_neox, hf_tokenizer, "neox", shots=SHOTS),
        "llama": runner.run(trained_llama, hf_tokenizer, "llama",
                            shots=SHOTS),
    }


def test_fig15_fewshot(benchmark, hf_tokenizer, trained_neox, trained_llama):
    reports = run_once(
        benchmark,
        lambda: regenerate(hf_tokenizer, trained_neox, trained_llama))
    print()
    rows = []
    for task in TASK_NAMES:
        row = [task]
        for model in ("neox", "llama"):
            for k in SHOTS:
                row.append(reports[model].get(task, k).accuracy)
        rows.append(row)
    print(format_table(
        ["task", "neox-0", "neox-3", "neox-5", "llama-0", "llama-3",
         "llama-5"], rows, title="Fig 15 — few-shot accuracy",
        float_fmt="{:.2f}"))

    for model, rep in reports.items():
        # All shot counts were evaluated for all tasks.
        assert {(t, k) for t in TASK_NAMES for k in SHOTS} == \
            set(rep.results)
        # Few-shot stays in a sane band around zero-shot overall.
        assert abs(rep.mean_accuracy(5) - rep.mean_accuracy(0)) < 0.25
    # Prompting helps somewhere: some (model, task) improves with shots.
    improvements = [
        reports[m].get(t, 5).accuracy - reports[m].get(t, 0).accuracy
        for m in reports for t in TASK_NAMES]
    assert max(improvements) > 0.0
    # Architectures remain on par in the few-shot regime.
    assert abs(reports["neox"].mean_accuracy(5) -
               reports["llama"].mean_accuracy(5)) < 0.15

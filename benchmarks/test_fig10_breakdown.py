"""Fig 10 — latency proportions within one transformer layer.

Regenerates (left) the per-component latency shares for a medium
(h=2304) and a large (h=4096) layer, and (right) the per-GEMM split —
checking the paper's takeaways: GEMMs dominate and their share grows
with scale (65.9% -> 91.2% in the paper), with QKV and the MLP the
largest GEMMs.
"""

from conftest import run_once
from repro.core import format_table
from repro.models import preset
from repro.profiling import layer_breakdown


def regenerate(roofline):
    out = {}
    for label, name in (("medium (1.7B)", "neox-1.7b-hf-52k"),
                        ("large (6.7B)", "neox-6.7b-hf-52k")):
        out[label] = {
            "noflash": layer_breakdown(preset(name), flash=0,
                                       roofline=roofline),
            "flash": layer_breakdown(preset(name), flash=2,
                                     roofline=roofline),
        }
    return out


def test_fig10_breakdown(benchmark, roofline):
    bd = run_once(benchmark, lambda: regenerate(roofline))
    print()
    rows = []
    for label, pair in bd.items():
        shares = pair["flash"].component_shares()
        rows.append([label, f"{pair['flash'].gemm_fraction:.1%}"] +
                    [f"{shares.get(k, 0.0):.1%}"
                     for k in ("qkv", "flash", "linproj", "mlp", "other")])
    print(format_table(
        ["layer", "GEMM total", "qkv", "flash", "linproj", "mlp", "DR+LN"],
        rows, title="Fig 10 — latency proportions (flash v2)"))

    med = bd["medium (1.7B)"]["flash"]
    big = bd["large (6.7B)"]["flash"]
    # GEMM share grows with model scale and dominates both.
    assert big.gemm_fraction > med.gemm_fraction > 0.60
    # QKV + MLP account for the most GEMM runtime in the large layer.
    gemm_shares = big.gemm_shares()
    ranked = sorted(gemm_shares, key=gemm_shares.get, reverse=True)
    assert set(ranked[:2]) == {"qkv", "mlp"}
    assert gemm_shares["qkv"] + gemm_shares["mlp"] > 0.6
    # Flash merges score+AOV into one fused component.
    assert "flash" in gemm_shares and "score" not in gemm_shares
    noflash = bd["large (6.7B)"]["noflash"].gemm_shares()
    assert {"score", "aov"} <= set(noflash)
    # Shares are proper distributions.
    assert abs(sum(big.component_shares().values()) - 1.0) < 1e-9
    assert abs(sum(gemm_shares.values()) - 1.0) < 1e-9

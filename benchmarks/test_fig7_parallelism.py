"""Fig 7 — single-node throughput of 1.7B and 6.7B under each parallelism.

Regenerates the 8-GCD comparison of ZeRO-1, TP=2 and PP=2 (plus plain DP
where it fits) and checks the paper's findings: ZeRO-1 is the best
strategy for the 6.7B model (~81 TFLOPS/GCD), PP is far behind, and the
6.7B model cannot train at all without some model-state sharding.
"""

from conftest import run_once
from repro.core import format_table
from repro.models import preset
from repro.parallel import ParallelConfig


def regenerate(simulator):
    rows = []
    values = {}
    for model, name in ((preset("neox-1.7b-hf-52k").with_flash(1), "1.7B"),
                        (preset("neox-6.7b-hf-52k").with_flash(1), "6.7B")):
        for pc in (ParallelConfig(dp=8),
                   ParallelConfig(dp=8, zero_stage=1),
                   ParallelConfig(dp=4, tp=2),
                   ParallelConfig(dp=4, pp=2)):
            prof = simulator.step(model, pc, check_memory=True)
            if prof.memory.fits:
                t = simulator.per_gcd_tflops(model, pc)
                rows.append([name, pc.label, f"{t:.1f}",
                             f"{prof.memory.utilization:.0%}"])
                values[(name, pc.label)] = t
            else:
                rows.append([name, pc.label, "OOM",
                             f"{prof.memory.utilization:.0%}"])
    return rows, values


def test_fig7_parallelism(benchmark, simulator):
    rows, v = run_once(benchmark, lambda: regenerate(simulator))
    print()
    print(format_table(["model", "strategy", "TFLOPS/GCD", "HBM"], rows,
                       title="Fig 7 — single Frontier node (8 GCDs)"))

    # 6.7B: plain DP OOMs (the motivation for model parallelism).
    assert ("6.7B", "DP") not in v
    # ZeRO-1 best for 6.7B at ~81 TFLOPS/GCD (paper's number).
    assert v[("6.7B", "ZeRO=1")] > v[("6.7B", "TP=2")] > v[("6.7B", "PP=2")]
    assert 75 < v[("6.7B", "ZeRO=1")] < 92
    # PP=2 "much worse even for a single node".
    assert v[("6.7B", "PP=2")] < 0.8 * v[("6.7B", "ZeRO=1")]
    assert v[("1.7B", "PP=2")] < 0.8 * v[("1.7B", "DP")]
    # 1.7B fits on one GCD, so plain DP is available and strongest.
    assert v[("1.7B", "DP")] >= v[("1.7B", "ZeRO=1")]
    assert v[("1.7B", "DP")] >= v[("1.7B", "TP=2")]

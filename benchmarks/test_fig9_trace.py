"""Fig 9 — runtime and GPU power trace of one 6.7B training step.

Regenerates the OmniTrace-style single-step timeline (forward layers,
backward, allreduce tail, optimizer) with its synchronized power trace,
and checks the structure the paper describes: 32 forward layer groups, a
backward ~2x the forward, a significant allreduce span, and power that
drops during communication.
"""

import numpy as np
import pytest

from conftest import run_once
from repro.models import preset
from repro.parallel import ParallelConfig
from repro.profiling import build_step_trace


def regenerate(simulator, power_model):
    model = preset("neox-6.7b-hf-52k").with_flash(2)
    profile = simulator.step(model, ParallelConfig(dp=256, zero_stage=1))
    trace = build_step_trace(model, profile, flash=2)
    times, watts = trace.power_trace(power_model, dt=5e-3)
    return trace, times, watts


def test_fig9_trace(benchmark, simulator, power_model):
    trace, times, watts = run_once(
        benchmark, lambda: regenerate(simulator, power_model))

    fwd = trace.events_in("forward")
    bwd = trace.events_in("backward")
    comm = trace.events_in("comm")
    print()
    print(f"Fig 9 — one training step, 6.7B ZeRO-1 @ 256 GPUs")
    print(f"  step duration: {trace.duration_s:.2f} s")
    print(f"  forward: {sum(e.duration_s for e in fwd):.2f} s "
          f"({len(fwd)} kernel spans over 32 layers)")
    print(f"  backward: {sum(e.duration_s for e in bwd):.2f} s")
    print(f"  allreduce tail: {sum(e.duration_s for e in comm):.2f} s")
    print(f"  power: min {watts.min():.0f} W, max {watts.max():.0f} W")

    # 32 forward layers, each containing a fused flash-attention span.
    layers = {e.name.split("/")[0] for e in fwd if "/" in e.name}
    assert len(layers) == 32
    assert any(e.name == "layer0/flash_attention" for e in fwd)
    # Backward ~2x the forward compute.
    fwd_compute = sum(e.duration_s for e in fwd if e.phase == "compute")
    bwd_time = sum(e.duration_s for e in bwd)
    assert 1.7 < bwd_time / fwd_compute < 2.3
    # "The allreduce operation takes a significant amount of time."
    assert sum(e.duration_s for e in comm) > 0.1 * trace.duration_s
    # Power oscillates: high during compute, dropping in communication.
    assert watts.max() > 470
    assert watts.min() < 400
    # Trace covers the full step and events don't overlap.
    events = sorted(trace.events, key=lambda e: e.start_s)
    for a, b in zip(events, events[1:]):
        assert b.start_s >= a.end_s - 1e-9
    assert times[-1] == pytest.approx(trace.duration_s, rel=0.02)

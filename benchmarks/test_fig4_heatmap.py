"""Fig 4 — training-throughput heatmap and flash-attention boosts.

Regenerates (left) the TFLOPS/GCD heatmap over the ~1B architecture grid
and (right) the per-architecture flash v1/v2 throughput for the eight
eligible cells A-H, checking every anchor the paper reports.
"""

import numpy as np

from conftest import run_once
from repro.core import (flash_boost_table, format_heatmap, format_table,
                        run_grid_search)


def regenerate(roofline):
    heatmap = run_grid_search("neox", roofline=roofline)
    boosts = flash_boost_table("neox", roofline=roofline)
    return heatmap, boosts


def test_fig4_heatmap(benchmark, roofline):
    heatmap, boosts = run_once(benchmark, lambda: regenerate(roofline))
    layers, hiddens, matrix = heatmap.as_matrix()
    print()
    print(format_heatmap(layers, hiddens, matrix,
                         title="Fig 4 (left) — TFLOPS/GCD, NeoX, no flash"))
    print()
    print(format_table(
        ["arch", "layers", "hidden", "hd", "base", "v1", "v2"],
        [[r["label"], r["layers"], r["hidden"], r["head_dim"], r["base"],
          r["flash_v1"], r["flash_v2"]] for r in boosts],
        title="Fig 4 (right) — flash boost, A-H", float_fmt="{:.1f}"))

    # Paper: throughput varies 58-76; best is 24 layers x 2304 hidden.
    assert 50 < heatmap.worst_tflops < 62
    assert 72 < heatmap.best_tflops < 80
    assert (heatmap.best_cell.num_layers,
            heatmap.best_cell.hidden_size) == (24, 2304)
    assert heatmap.best_cell.head_dim == 96
    # Eligible (head_dim % 8) cells are top performers per layer row.
    assert heatmap.eligible_outperform_rate() >= 0.6
    # Average boosts ~14% (v1) and ~19% (v2); best ~82/84 TFLOPS.
    v1 = float(np.mean([r["boost_v1"] for r in boosts]))
    v2 = float(np.mean([r["boost_v2"] for r in boosts]))
    assert 0.10 < v1 < 0.18
    assert 0.15 < v2 < 0.23
    assert 78 < max(r["flash_v1"] for r in boosts) < 88
    assert 80 < max(r["flash_v2"] for r in boosts) < 92
    # Observation 1: over 43% of the 191.5 TFLOPS GCD peak with flash.
    assert max(r["flash_v2"] for r in boosts) / 191.5 > 0.43

"""Extension — Frontier vs an AI-optimized (Selene-like) fabric.

The paper grounds Observation 2 in Frontier's network balance ("network
bandwidth relatively limited compared to AI-oriented machines such as
Selene").  This benchmark runs the same 6.7B parallelism contest on both
machine specs and asserts the implication: the TP=2-over-ZeRO advantage
and the large-scale ZeRO falloff are Frontier-balance effects that
largely vanish on the AI-optimized fabric.
"""

from conftest import run_once
from repro.core import format_table
from repro.frontier import FRONTIER, SELENE_LIKE, compare_platforms, \
    make_simulator
from repro.models import preset
from repro.parallel import ParallelConfig


def regenerate():
    model = preset("neox-6.7b-hf-52k").with_flash(1)
    comparisons = compare_platforms(model, 256)
    retention = {}
    for machine in (FRONTIER, SELENE_LIKE):
        sim = make_simulator(machine)
        small = sim.per_gcd_tflops(model, ParallelConfig(dp=64,
                                                         zero_stage=1))
        large = sim.per_gcd_tflops(model, ParallelConfig(dp=256,
                                                         zero_stage=1))
        retention[machine.name] = large / small
    return comparisons, retention


def test_extension_platforms(benchmark):
    comparisons, retention = run_once(benchmark, regenerate)
    print()
    print(format_table(
        ["platform", "ZeRO-1 TFLOPS", "TP=2 TFLOPS", "TP advantage",
         "ZeRO 64→256 retention"],
        [[c.platform, c.zero_tflops, c.tp2_tflops,
          f"{c.tp_advantage:+.1%}", f"{retention[c.platform]:.0%}"]
         for c in comparisons],
        title="Extension — platform what-if (6.7B @ 256 GPUs)",
        float_fmt="{:.1f}"))

    by = {c.platform: c for c in comparisons}
    # On Frontier, topology-aware TP=2 is clearly the right call.
    assert by["Frontier"].tp_advantage > 0.08
    # On the AI-optimized fabric, the advantage shrinks to a sliver.
    assert by["Selene-like"].tp_advantage < \
        0.6 * by["Frontier"].tp_advantage
    # And ZeRO's large-scale falloff mostly disappears there.
    assert retention["Selene-like"] > retention["Frontier"] + 0.05
    # The AI-optimized machine is faster in absolute per-GCD terms too
    # (higher-bandwidth fabric feeding similar-class accelerators).
    assert by["Selene-like"].zero_tflops > by["Frontier"].zero_tflops

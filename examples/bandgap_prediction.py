"""Scientific downstream task: band-gap prediction with LLM fusion.

Reproduces the paper's Fig 3 paradigm and Table V experiment:

1. generate a synthetic Materials-Project-style crystal dataset;
2. pre-train a tiny MatGPT on the materials corpus;
3. train the four GNN baselines (CGCNN / MEGNet / ALIGNN / MF-CGNN);
4. fuse MF-CGNN with MatSciBERT-style and MatGPT formula embeddings;
5. analyze the two embedding spaces (Fig 16 distances/cosines, Fig 17
   t-SNE clustering).

Run:  python examples/bandgap_prediction.py
"""

import numpy as np

from repro.core import format_table
from repro.data import AbstractGenerator, PackedDataset
from repro.matsci import (GPTFormulaEmbedder, MatSciBERTEmbedder,
                          diagnose_embeddings, generate_dataset, kmeans,
                          run_table_v, tsne)
from repro.models import GPTModel, preset
from repro.tokenizers import BPETokenizer
from repro.training import Trainer, TrainerConfig


def main() -> None:
    print("=== dataset ===")
    dataset = generate_dataset(500, seed=0)
    counts = dataset.class_counts()
    print(f"{len(dataset)} materials; classes {counts}; "
          f"gap range {dataset.band_gaps().min():.2f}-"
          f"{dataset.band_gaps().max():.2f} eV")

    print("\n=== pre-training MatGPT for embeddings ===")
    texts = [d.text for d in AbstractGenerator(seed=0).sample(200)]
    tokenizer = BPETokenizer().train(texts, 512)
    lm_data = PackedDataset.from_texts(texts, tokenizer, seq_len=48)
    gpt = GPTModel(preset("tiny-llama"), seed=0)
    Trainer(gpt, lm_data, TrainerConfig(optimizer="adam", lr=3e-3,
                                        batch_size=8, max_steps=50,
                                        eval_every=1000)).train()
    gpt_embedder = GPTFormulaEmbedder(gpt, tokenizer)
    bert_embedder = MatSciBERTEmbedder()

    print("\n=== Table V: band-gap MAE (eV) ===")
    results = run_table_v(dataset, gpt_embedder, bert_embedder,
                          epochs=250, seed=0)
    print(format_table(["model", "test MAE", "train MAE"],
                       [[r.model, r.test_mae, r.train_mae]
                        for r in results]))
    print("[paper: CGCNN 0.388, MEGNet 0.33, ALIGNN 0.218, MF-CGNN 0.215, "
          "+SciBERT 0.204, +GPT 0.197]")

    print("\n=== Fig 16: embedding geometry ===")
    formulas = dataset.formulas()[:150]
    rows = []
    for name, embedder in (("MatGPT", gpt_embedder),
                           ("MatSciBERT", bert_embedder)):
        diag = diagnose_embeddings(name, embedder.embed_many(formulas))
        rows.append([name, diag.mean_distance, diag.mean_cosine,
                     diag.cosine_std,
                     "yes" if diag.is_anisotropic else "no"])
    print(format_table(["embedder", "mean dist", "mean cos", "cos std",
                        "anisotropic"], rows))

    print("\n=== Fig 17: t-SNE + k-means clustering ===")
    for name, embedder in (("MatGPT", gpt_embedder),
                           ("MatSciBERT", bert_embedder)):
        X = embedder.embed_many(formulas)
        Y = tsne(X, n_iter=150, seed=0)
        labels, _ = kmeans(Y, 3, seed=0)
        sizes = sorted(np.bincount(labels), reverse=True)
        print(f"{name}: t-SNE map spread {Y.std():.1f}, "
              f"3-means cluster sizes {sizes}")


if __name__ == "__main__":
    main()

"""Distributed-training scaling study on simulated Frontier (Figs 7-12).

Reproduces the paper's parallelism analysis:

* single-node (8 GCD) comparison of ZeRO-1 / TP=2 / PP=2 for 1.7B and
  6.7B, with memory-feasibility checks (Fig 7);
* weak-scaling sweeps to 256 GPUs with compute/comm/IO breakdowns
  (Fig 8) and RCCL message statistics (Fig 11);
* power, energy and TFLOPS/Watt (Fig 12, Table IV).

Run:  python examples/scaling_study.py
"""

import numpy as np

from repro.core import format_series, format_table
from repro.frontier import MemoryModel, PowerModel
from repro.models import model_flops_per_token, preset
from repro.parallel import ParallelConfig, TrainingSimulator
from repro.profiling import sample_run

TOTAL_TOKENS = 28e9  # ~1.9 epochs over the 15B-token corpus (see EXPERIMENTS.md)


def main() -> None:
    sim = TrainingSimulator()
    mm = MemoryModel()
    m17 = preset("neox-1.7b-hf-52k").with_flash(1)
    m67 = preset("neox-6.7b-hf-52k").with_flash(1)

    print("=== Fig 7: single node (8 GCDs) ===")
    rows = []
    for model, name in ((m17, "1.7B"), (m67, "6.7B")):
        for pc in (ParallelConfig(dp=8), ParallelConfig(dp=8, zero_stage=1),
                   ParallelConfig(dp=4, tp=2), ParallelConfig(dp=4, pp=2)):
            prof = sim.step(model, pc, check_memory=True)
            if prof.memory.fits:
                tflops = f"{sim.per_gcd_tflops(model, pc):.1f}"
            else:
                tflops = "OOM"
            rows.append([name, pc.label, tflops,
                         f"{prof.memory.utilization:.0%}"])
    print(format_table(["model", "strategy", "TFLOPS/GCD", "HBM"], rows))

    print("\n=== Fig 8 (top): weak scaling to 256 GPUs ===")
    gpus = [8, 16, 32, 64, 128, 256]
    series = {}
    for strategy, model, label in (("dp", m17, "1.7B DP"),
                                   ("zero1", m67, "6.7B ZeRO-1"),
                                   ("tp2", m67, "6.7B TP=2")):
        pts = sim.scaling_sweep(model, strategy, gpus)
        series[label] = np.array([p.per_gcd_tflops for p in pts])
        final = pts[-1]
        print(f"{label}: {final.aggregate_pflops:.1f} PFLOPS aggregate, "
              f"{final.efficiency:.0%} efficiency at 256 GPUs")
    print(format_series(np.array(gpus), series, x_label="GPUs"))

    print("\n=== Fig 8 (bottom): kernel breakdown at 256 GPUs ===")
    rows = []
    for model, pc, label in ((m17, ParallelConfig(dp=256), "1.7B DP"),
                             (m67, ParallelConfig(dp=256, zero_stage=1),
                              "6.7B ZeRO-1"),
                             (m67, ParallelConfig(dp=128, tp=2),
                              "6.7B TP=2")):
        fr = sim.step(model, pc).kernel_fractions()
        rows.append([label, fr["compute"], fr["comm"], fr["io"]])
    print(format_table(["run", "compute", "comm", "io"], rows))

    print("\n=== Fig 11: RCCL message statistics per step per GPU ===")
    rows = []
    for model, pc, label in ((m17, ParallelConfig(dp=256), "1.7B DP"),
                             (m67, ParallelConfig(dp=256, zero_stage=1),
                              "6.7B ZeRO-1"),
                             (m67, ParallelConfig(dp=128, tp=2),
                              "6.7B TP=2")):
        log = sim.step(model, pc).schedule.log
        rows.append([label, log.num_calls, f"{log.total_bytes / 1e9:.1f}",
                     f"{log.volume_vs_model_size(model):.1f}x"])
    print(format_table(["run", "RCCL calls", "GB", "vs model size"], rows))

    print("\n=== Fig 12 / Table IV: power and energy at 256 GPUs ===")
    pm = PowerModel()
    rows = []
    for model, pc, label in ((m17, ParallelConfig(dp=256), "1.7B"),
                             (m67, ParallelConfig(dp=256, zero_stage=1),
                              "6.7B")):
        prof = sim.step(model, pc)
        mem = mm.breakdown(model, micro_batch=8, dp=pc.dp, tp=pc.tp,
                           zero_stage=pc.zero_stage).total / 1e9
        trace = sample_run(prof, memory_gb=mem, num_steps=3)
        tflops = sim.per_gcd_tflops(model, pc)
        step_tokens = 256 * 8 * 2048
        steps = TOTAL_TOKENS / step_tokens
        duration = steps * prof.total_s
        summary = pm.run_summary(
            {"compute": prof.kernel_fractions()["compute"],
             "comm": prof.kernel_fractions()["comm"],
             "io": prof.kernel_fractions()["io"]},
            duration_s=duration, num_gcds=256)
        rows.append([label, 256, f"{duration / 3600:.1f}",
                     f"{trace.mean_power:.0f}",
                     f"{summary.energy_mwh:.2f}",
                     f"{summary.tflops_per_watt(tflops):.2f}"])
    print(format_table(
        ["model", "GPUs", "hours", "W/MI250X", "MWh", "TFLOPS/W"], rows))
    print("[paper Table IV: 1.7B 4.1h 0.23MWh 0.33; "
          "6.7B 16.5h 0.91MWh 0.27]")


if __name__ == "__main__":
    main()

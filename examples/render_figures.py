"""Render every reproducible paper figure to SVG under ./figures/.

Uses the repository's dependency-free SVG plotting layer
(:mod:`repro.core.svgplot`) over the same data the benchmarks assert on:

* fig4_heatmap.svg / fig4_flash.svg   — throughput grid + flash boosts
* fig5_memory.svg                     — peak memory vs context length
* fig8_scaling.svg                    — weak-scaling sweeps
* fig13_loss.svg                      — surrogate loss curves
* fig14_zeroshot.svg                  — zero-shot accuracy bars
* fig16_cosines.svg                   — embedding cosine densities
* fig17_tsne_{gpt,bert}.svg           — t-SNE cluster maps

Run:  python examples/render_figures.py  [output_dir]
"""

import sys
from pathlib import Path

import numpy as np

from repro.core import flash_boost_table, run_grid_search
from repro.core.svgplot import (bar_chart, density_chart, heatmap_chart,
                                line_chart, scatter_chart)
from repro.data import AbstractGenerator, PackedDataset
from repro.evalharness import EvalRunner, build_benchmark_suite
from repro.frontier import MemoryModel
from repro.matsci import (GPTFormulaEmbedder, MatSciBERTEmbedder,
                          cosine_similarities, generate_dataset, kmeans,
                          tsne)
from repro.models import GPTModel, preset
from repro.parallel import TrainingSimulator
from repro.tokenizers import BPETokenizer
from repro.training import LossCurveModel, Trainer, TrainerConfig


def main(out_dir: str = "figures") -> None:
    out = Path(out_dir)
    written = []

    # -- Fig 4 -----------------------------------------------------------
    heatmap = run_grid_search("neox")
    layers, hiddens, matrix = heatmap.as_matrix()
    written.append(heatmap_chart(
        layers, hiddens, matrix,
        title="Fig 4 (left) — TFLOPS/GCD heatmap").save(out / "fig4_heatmap"))
    boosts = flash_boost_table("neox")
    written.append(bar_chart(
        {r["label"]: {"base": r["base"], "flash v1": r["flash_v1"],
                      "flash v2": r["flash_v2"]} for r in boosts},
        title="Fig 4 (right) — flash-attention boost",
        ylabel="TFLOPS/GCD").save(out / "fig4_flash"))

    # -- Fig 5 -----------------------------------------------------------
    mm = MemoryModel()
    cfg17 = preset("neox-1.7b-hf-52k")
    seqs = np.array([2048, 4096, 8192, 16384, 32768])
    series = {
        "no flash": np.array([mm.breakdown(cfg17, seq_len=int(s),
                                           flash=0).utilization * 100
                              for s in seqs]),
        "flash": np.array([mm.breakdown(cfg17, seq_len=int(s),
                                        flash=1).utilization * 100
                           for s in seqs]),
    }
    written.append(line_chart(
        seqs, series, title="Fig 5 — peak memory vs context (1.7B)",
        xlabel="sequence length", ylabel="% of 64 GB HBM",
        log_x=True).save(out / "fig5_memory"))

    # -- Fig 8 -----------------------------------------------------------
    sim = TrainingSimulator()
    gpus = [8, 16, 32, 64, 128, 256]
    sweeps = {
        "1.7B DP": sim.scaling_sweep(
            preset("neox-1.7b-hf-52k").with_flash(1), "dp", gpus),
        "6.7B ZeRO-1": sim.scaling_sweep(
            preset("neox-6.7b-hf-52k").with_flash(1), "zero1", gpus),
        "6.7B TP=2": sim.scaling_sweep(
            preset("neox-6.7b-hf-52k").with_flash(1), "tp2", gpus),
    }
    written.append(line_chart(
        np.array(gpus),
        {k: np.array([p.per_gcd_tflops for p in v])
         for k, v in sweeps.items()},
        title="Fig 8 — weak scaling", xlabel="GPUs",
        ylabel="TFLOPS/GCD", log_x=True).save(out / "fig8_scaling"))

    # -- Fig 13 ----------------------------------------------------------
    lm = LossCurveModel(num_points=80)
    curves = {r.label: lm.curve(r) for r in lm.fig13_recipes()[:5]}
    first = next(iter(curves.values()))
    written.append(line_chart(
        first.tokens,
        {label: c.train for label, c in curves.items()},
        title="Fig 13 — training loss (surrogate)",
        xlabel="tokens", ylabel="loss", log_x=True).save(out / "fig13_loss"))

    # -- Real tiny model for Figs 14/16/17 -------------------------------
    texts = [d.text for d in AbstractGenerator(seed=0).sample(200)]
    tok = BPETokenizer().train(texts, 512)
    data = PackedDataset.from_texts(texts, tok, seq_len=48)
    model = GPTModel(preset("tiny-llama"), seed=0)
    Trainer(model, data, TrainerConfig(optimizer="adam", lr=5e-3,
                                       batch_size=8, max_steps=80,
                                       eval_every=10 ** 9)).train()

    runner = EvalRunner(build_benchmark_suite(n_questions=16))
    report = runner.run(model, tok, "tiny-llama",
                        tasks=["sciq", "piqa", "arc_e", "arc_c", "ht_cc"])
    written.append(bar_chart(
        {task: {"tiny-llama": acc}
         for task, acc in report.accuracies(0).items()},
        title="Fig 14 — zero-shot accuracy (tiny scale)",
        ylabel="accuracy").save(out / "fig14_zeroshot"))

    dataset = generate_dataset(150, seed=0)
    formulas = dataset.formulas()
    gpt_X = GPTFormulaEmbedder(model, tok).embed_many(formulas)
    bert_X = MatSciBERTEmbedder().embed_many(formulas)
    written.append(density_chart(
        {"MatGPT": cosine_similarities(gpt_X),
         "MatSciBERT": cosine_similarities(bert_X)},
        title="Fig 16 — pairwise cosine similarity",
        xlabel="cosine").save(out / "fig16_cosines"))

    for name, X in (("gpt", gpt_X), ("bert", bert_X)):
        Y = tsne(X, n_iter=150, seed=0)
        labels, _ = kmeans(Y, 3, seed=0)
        written.append(scatter_chart(
            Y, labels,
            title=f"Fig 17 — t-SNE ({name})").save(out / f"fig17_tsne_{name}"))

    print(f"wrote {len(written)} figures:")
    for path in written:
        print(f"  {path}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "figures")

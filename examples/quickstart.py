"""Quickstart: pre-train a tiny MatGPT and use it.

Walks the core loop of the paper at laptop scale:

1. generate a synthetic materials-science corpus (Table I pipeline);
2. train an HF-style BPE tokenizer;
3. pre-train a tiny LLaMA-family model with the cosine-warmup recipe;
4. generate text and run a zero-shot science-QA evaluation.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import format_bars
from repro.data import AbstractGenerator, PackedDataset
from repro.evalharness import EvalRunner, build_benchmark_suite
from repro.models import GPTModel, preset
from repro.tokenizers import BPETokenizer
from repro.training import Trainer, TrainerConfig


def main() -> None:
    print("=== 1. corpus ===")
    corpus = AbstractGenerator(seed=0).sample(250, materials_fraction=1.0)
    texts = [d.text for d in corpus]
    print(f"{len(texts)} abstracts; sample:\n  {texts[0][:120]}...")

    print("\n=== 2. tokenizer ===")
    tokenizer = BPETokenizer().train(texts, vocab_size=512)
    sample = "the band gap of GaAs"
    ids = tokenizer.encode(sample)
    print(f"vocab={tokenizer.vocab_size}; {sample!r} -> {len(ids)} tokens; "
          f"round-trip ok: {tokenizer.decode(ids) == sample}")

    print("\n=== 3. pre-training (tiny-llama) ===")
    dataset = PackedDataset.from_texts(texts, tokenizer, seq_len=48)
    model = GPTModel(preset("tiny-llama"), seed=0)
    print(f"parameters: {model.num_parameters():,}")
    trainer = Trainer(model, dataset, TrainerConfig(
        optimizer="adam", lr=5e-3, batch_size=8, max_steps=100,
        eval_every=25))
    history = trainer.train()
    print(f"loss: {history.train_loss[0]:.3f} -> "
          f"{history.final_train_loss:.3f} "
          f"(val {history.final_val_loss:.3f})")

    print("\n=== 4a. generation ===")
    prompt = "The electronic structure of"
    out = model.generate(tokenizer.encode(prompt), max_new_tokens=12)
    print(f"  {prompt!r} -> {tokenizer.decode(out)!r}")

    print("\n=== 4b. zero-shot evaluation ===")
    runner = EvalRunner(build_benchmark_suite(n_questions=20))
    report = runner.run(model, tokenizer, model_name="tiny-llama",
                        tasks=["sciq", "piqa", "arc_e", "arc_c"])
    print(format_bars(report.accuracies(0), title="zero-shot accuracy"))
    print(f"\nmean accuracy: {report.mean_accuracy(0):.3f} "
          f"(random baseline ~0.3)")


if __name__ == "__main__":
    main()

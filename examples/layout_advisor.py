"""Layout advisor: the paper's "practical guidance" as a tool.

Given a model and a GPU budget, ranks every feasible 3D-parallel layout
(data / tensor / pipeline / ZeRO stages 1-3) by simulated throughput with
memory-feasibility checks — automatically rederiving the paper's
Observation 2 — and demos the inference-side extensions (grouped-query
attention, KV-cache decoding).

Run:  python examples/layout_advisor.py
"""

import numpy as np

from repro.core import format_table, recommend_layouts
from repro.models import GPTModel, KVCache, ModelConfig, preset


def advise(model, n_gpus: int) -> None:
    print(f"\n--- {model.label()} on {n_gpus} GPUs ---")
    recs = recommend_layouts(model, n_gpus, max_tp=4, max_pp=4,
                             include_infeasible=True)
    rows = []
    for r in recs[:8]:
        rows.append([r.label,
                     f"{r.per_gcd_tflops:.1f}" if r.fits else "—",
                     f"{r.hbm_utilization:.0%}",
                     "ok" if r.fits else "OOM",
                     r.rationale[:62]])
    print(format_table(["layout", "TFLOPS/GCD", "HBM", "fits", "why"], rows))
    best = recs[0]
    print(f"=> recommended: {best.label} "
          f"({best.per_gcd_tflops:.1f} TFLOPS/GCD)")


def main() -> None:
    print("=== 3D-parallel layout advisor (Observation 2, automated) ===")
    m17 = preset("neox-1.7b-hf-52k").with_flash(1)
    m67 = preset("neox-6.7b-hf-52k").with_flash(1)
    advise(m17, 256)   # -> pure DP
    advise(m67, 8)     # -> ZeRO-1
    advise(m67, 256)   # -> TP=2 on the in-package link

    print("\n=== Inference extensions: GQA + KV-cache decoding ===")
    mha = ModelConfig(arch="llama", hidden_size=64, num_layers=2,
                      num_heads=8, vocab_size=256, max_seq_len=64)
    gqa = ModelConfig(arch="llama", hidden_size=64, num_layers=2,
                      num_heads=8, num_kv_heads=2, vocab_size=256,
                      max_seq_len=64)
    prompt = np.array([5, 17, 42])
    for label, cfg in (("MHA (8 kv heads)", mha), ("GQA (2 kv heads)", gqa)):
        model = GPTModel(cfg, seed=0)
        out_cached = model.generate(prompt, 12, use_cache=True)
        out_plain = model.generate(prompt, 12)
        caches = [KVCache() for _ in model.layers]
        model._forward_cached(np.arange(32)[None], caches)
        cache_kb = sum(c.memory_bytes() for c in caches) / 1024
        print(f"{label}: params {model.num_parameters():,}, "
              f"32-token KV cache {cache_kb:.1f} KiB, "
              f"cached == plain decode: "
              f"{bool(np.array_equal(out_cached, out_plain))}")


if __name__ == "__main__":
    main()

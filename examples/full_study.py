"""The complete comparative study, end to end (the whole paper).

Runs every stage of the paper's pipeline at laptop scale through
:class:`repro.core.ComparativeStudy`: corpus generation and screening,
tokenizer training, controlled pre-training of both architectures,
zero-shot evaluation, the band-gap fusion experiment, and Observation 4.

Takes a few minutes.  Run:  python examples/full_study.py
"""

from repro.core import ComparativeStudy, StudyConfig, format_bars, format_table


def main() -> None:
    study = ComparativeStudy(StudyConfig(train_steps=100, eval_questions=16,
                                         n_materials=300, gnn_epochs=150))
    results = study.run()

    print("=== screening (paper §III, Table I pipeline) ===")
    print(format_table(
        ["source", "total", "kept", "precision"],
        [[r.source, r.total, r.kept, r.precision]
         for r in results.screening_reports]))
    print(f"screened corpus: {results.corpus_size} documents")

    print("\n=== pre-training (controlled recipe, both architectures) ===")
    for arch, hist in results.histories.items():
        print(f"{arch:6}: train {hist.train_loss[0]:.3f} -> "
              f"{hist.final_train_loss:.3f}, val {hist.final_val_loss:.3f}")

    print("\n=== zero-shot QA (Fig 14 analogue) ===")
    for arch, report in results.eval_reports.items():
        print(format_bars(report.accuracies(0), title=f"{arch} accuracy"))
        print()

    print("=== Table V: band-gap MAE ===")
    print(format_table(["model", "test MAE"],
                       [[r.model, r.test_mae] for r in results.table_v]))

    print("\n=== Observation 4 ===")
    obs = results.observation_4
    print(f"holds: {obs.holds}")
    for k, v in obs.evidence.items():
        print(f"  {k}: {v:.3f}")


if __name__ == "__main__":
    main()

"""Architecture search on the Frontier performance model (paper §III/IV-B).

Reproduces the paper's computationally-efficient design loop:

* sweep layer count x hidden size around ~1B parameters and simulate the
  training throughput heatmap (Fig 4 left);
* identify the flash-eligible architectures A–H (head_dim % 8 == 0) and
  their flash v1/v2 boosts (Fig 4 right);
* compare GPT-NeoX vs LLaMA throughput on the eligible cells (Fig 6);
* check the feasibility constraints (Eqs 1–5) for candidate 3D layouts.

Run:  python examples/architecture_search.py
"""

from repro.core import (FIG4_GRID, flash_boost_table, format_heatmap,
                        format_table, run_grid_search)
from repro.frontier import RooflineModel
from repro.models import ModelConfig
from repro.parallel import feasible_configs


def main() -> None:
    roofline = RooflineModel()

    print("=== Fig 4 (left): TFLOPS/GCD heatmap, NeoX, no flash ===")
    heatmap = run_grid_search("neox", roofline=roofline)
    layers, hiddens, matrix = heatmap.as_matrix()
    print(format_heatmap(layers, hiddens, matrix))
    best = heatmap.best_cell
    print(f"\nbest: {best.num_layers} layers x {best.hidden_size} hidden "
          f"(head_dim {best.head_dim}) at {heatmap.best_tflops:.1f} "
          f"TFLOPS/GCD; range {heatmap.worst_tflops:.1f}-"
          f"{heatmap.best_tflops:.1f}  [paper: 58-76, best 24x2304]")

    print("\n=== Fig 4 (right): flash-attention boost for A-H ===")
    rows = flash_boost_table("neox", roofline=roofline)
    print(format_table(
        ["arch", "layers", "hidden", "hd", "base", "v1", "v2",
         "boost_v1", "boost_v2"],
        [[r["label"], r["layers"], r["hidden"], r["head_dim"], r["base"],
          r["flash_v1"], r["flash_v2"], f"{r['boost_v1']:+.1%}",
          f"{r['boost_v2']:+.1%}"] for r in rows], float_fmt="{:.1f}"))
    mean_v1 = sum(r["boost_v1"] for r in rows) / len(rows)
    mean_v2 = sum(r["boost_v2"] for r in rows) / len(rows)
    print(f"mean boost: v1 {mean_v1:+.1%}, v2 {mean_v2:+.1%} "
          f"[paper: +14% / +19%]")

    print("\n=== Fig 6: NeoX vs LLaMA on eligible cells (flash v1) ===")
    results = []
    for cell in (c for c in FIG4_GRID if c.eligible):
        neox = roofline.achieved_tflops(cell.to_config("neox"), flash=1)
        llama = roofline.achieved_tflops(cell.to_config("llama"), flash=1)
        results.append([f"{cell.num_layers}x{cell.hidden_size}", neox, llama,
                        "NeoX" if neox > llama else "LLaMA"])
    print(format_table(["arch", "NeoX", "LLaMA", "winner"], results,
                       float_fmt="{:.1f}"))

    print("\n=== Eqs 1-5: feasible 3D layouts for 6.7B on 64 GPUs ===")
    model = ModelConfig(arch="neox", hidden_size=4096, num_layers=32,
                        num_heads=32)
    for pc in feasible_configs(model, 64, max_tp=4, max_pp=4):
        print(f"  dp={pc.dp:<3} tp={pc.tp} pp={pc.pp} "
              f"zero={pc.zero_stage}  ({pc.label})")


if __name__ == "__main__":
    main()

"""Training-engineering features walkthrough.

Demonstrates the production-training machinery around the core loop:

1. corpus deduplication (MinHash) before tokenizer training;
2. gradient accumulation — 4 micro-batches forming one global step,
   numerically identical to the 4x batch;
3. mid-run checkpointing and exact resume;
4. held-out perplexity / bits-per-character and free-form completion
   evaluation of the final model;
5. persisting every artifact: corpus (JSONL), tokenizer, model weights.

Run:  python examples/training_features.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.data import (AbstractGenerator, PackedDataset, deduplicate,
                        save_corpus)
from repro.evalharness import (bits_per_character, build_completion_task,
                               evaluate_generation, perplexity)
from repro.models import GPTModel, preset, save_checkpoint, save_tokenizer
from repro.tokenizers import BPETokenizer
from repro.training import Trainer, TrainerConfig


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-train-"))
    print(f"artifacts -> {workdir}")

    print("\n=== 1. corpus + dedup ===")
    docs = AbstractGenerator(seed=0).sample(220, materials_fraction=1.0)
    # Simulate index overlap: re-inject a few documents.
    texts = [d.text for d in docs] + [docs[3].text, docs[11].text]
    clean, report = deduplicate(texts, threshold=0.8)
    print(f"{report.total} documents -> {report.kept} after dedup "
          f"({report.removed} near-duplicates)")
    save_corpus(docs, workdir / "corpus")

    print("\n=== 2. tokenizer + packing ===")
    tokenizer = BPETokenizer().train(clean, 512)
    dataset = PackedDataset.from_texts(clean, tokenizer, seq_len=48)
    print(f"vocab {tokenizer.vocab_size}, {dataset.num_train} train / "
          f"{dataset.num_val} val sequences")

    print("\n=== 3. training with gradient accumulation ===")
    cfg = TrainerConfig(optimizer="adam", lr=5e-3, batch_size=4,
                        grad_accum_steps=2, max_steps=80, eval_every=20)
    model = GPTModel(preset("tiny-llama"), seed=0)
    trainer = Trainer(model, dataset, cfg)
    trainer.train(stop_step=40)
    ckpt = trainer.save(workdir / "mid_run", step=40)
    print(f"checkpointed at step 40 -> {ckpt}")

    # Resume into a fresh process-equivalent trainer and finish.
    resumed_model = GPTModel(preset("tiny-llama"), seed=123)
    resumed = Trainer(resumed_model, dataset, cfg)
    step = resumed.resume(ckpt)
    history = resumed.train(start_step=step)
    print(f"resumed from step {step}; final val loss "
          f"{history.final_val_loss:.3f}")

    print("\n=== 4. evaluation ===")
    held = [d.text for d in AbstractGenerator(seed=99).sample(10)]
    ppl = perplexity(resumed_model, tokenizer, held)
    bpc = bits_per_character(resumed_model, tokenizer, held)
    gen = evaluate_generation(resumed_model, tokenizer,
                              build_completion_task(12, seed=0))
    print(f"held-out perplexity {ppl:.1f}, bits/char {bpc:.2f}")
    print(f"completion: prefix match {gen.prefix_match:.0%}, "
          f"token F1 {gen.mean_f1:.2f}")

    print("\n=== 5. persistence ===")
    model_path = save_checkpoint(resumed_model, workdir / "model")
    tok_path = save_tokenizer(tokenizer, workdir / "tokenizer")
    print(f"model -> {model_path}\ntokenizer -> {tok_path}")

    print("\n=== 6. sampling strategies ===")
    prompt = tokenizer.encode("Thin films of")
    for label, kwargs in (("greedy", {}),
                          ("top-k=20", dict(temperature=0.8, top_k=20)),
                          ("nucleus p=0.9", dict(temperature=0.8,
                                                 top_p=0.9))):
        out = resumed_model.generate(prompt, 10, use_cache=True,
                                     rng=np.random.default_rng(0), **kwargs)
        print(f"  {label:14} -> {tokenizer.decode(out)!r}")


if __name__ == "__main__":
    main()

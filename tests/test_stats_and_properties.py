"""Tests for corpus/tokenizer statistics and the two-property materials
dataset (band gap vs formation energy)."""

import numpy as np
import pytest

from repro.data import (AbstractGenerator, corpus_stats, tokenizer_stats,
                        zipf_fit)
from repro.matsci import GraphEncoder, evaluate_model, generate_dataset
from repro.tokenizers import BPETokenizer, UnigramTokenizer


@pytest.fixture(scope="module")
def texts():
    return [d.text for d in AbstractGenerator(seed=0).sample(150)]


class TestTokenizerStats:
    def test_fertility_decreases_with_vocab(self, texts):
        small = BPETokenizer().train(texts, 280)
        large = BPETokenizer().train(texts, 600)
        fs = tokenizer_stats(small, texts[:40])
        fl = tokenizer_stats(large, texts[:40])
        assert fl.fertility < fs.fertility
        assert fl.chars_per_token > fs.chars_per_token

    def test_spm_and_bpe_segment_differently(self, texts):
        bpe = BPETokenizer().train(texts, 400)
        spm = UnigramTokenizer().train(texts, 400)
        sb = tokenizer_stats(bpe, texts[:30])
        ss = tokenizer_stats(spm, texts[:30])
        # Different fertilities => different per-token entropy scales =>
        # incomparable losses (Observation 3's mechanism).
        assert abs(sb.fertility - ss.fertility) / sb.fertility > 0.05

    def test_utilization_in_unit_interval(self, texts):
        tok = BPETokenizer().train(texts, 400)
        s = tokenizer_stats(tok, texts[:30])
        assert 0 < s.vocab_utilization <= 1.0
        assert s.distinct_tokens_used <= s.vocab_size

    def test_counts_consistent(self, texts):
        tok = BPETokenizer().train(texts, 400)
        s = tokenizer_stats(tok, texts[:10])
        assert s.total_tokens == sum(len(tok.encode(t)) for t in texts[:10])
        assert s.total_words == sum(len(t.split()) for t in texts[:10])

    def test_empty_rejected(self, texts):
        tok = BPETokenizer().train(texts, 300)
        with pytest.raises(ValueError):
            tokenizer_stats(tok, [])


class TestCorpusStats:
    def test_basic_counts(self, texts):
        s = corpus_stats(texts)
        assert s.num_documents == len(texts)
        assert s.num_words > s.num_types > 100
        assert 0 < s.type_token_ratio < 1

    def test_zipf_like_frequency_structure(self, texts):
        s = corpus_stats(texts)
        # Natural-language-like corpora show a steep negative slope.
        assert -2.5 < s.zipf_exponent < -0.5

    def test_top_words_sorted(self, texts):
        s = corpus_stats(texts, top_k=5)
        counts = [c for _, c in s.top_words]
        assert counts == sorted(counts, reverse=True)
        assert len(s.top_words) == 5

    def test_zipf_fit_validations(self):
        with pytest.raises(ValueError):
            zipf_fit(np.array([3, 2]))
        with pytest.raises(ValueError):
            corpus_stats([])

    def test_zipf_fit_exact_power_law(self):
        ranks = np.arange(1, 200)
        counts = 1000.0 / ranks  # exponent exactly -1
        assert zipf_fit(counts) == pytest.approx(-1.0, abs=1e-6)


class TestTwoPropertyDataset:
    @pytest.fixture(scope="class")
    def dataset(self):
        return generate_dataset(300, seed=0)

    def test_both_targets_available(self, dataset):
        assert dataset.targets("band_gap").shape == (300,)
        assert dataset.targets("formation_energy").shape == (300,)
        with pytest.raises(ValueError):
            dataset.targets("bulk_modulus")

    def test_formation_energies_negative(self, dataset):
        """Stable synthetic compounds: E_f < 0 (as in Materials Project)."""
        assert (dataset.formation_energies() < 0).mean() > 0.95

    def test_properties_not_duplicates(self, dataset):
        corr = np.corrcoef(dataset.band_gaps(),
                           dataset.formation_energies())[0, 1]
        assert abs(corr) < 0.95

    def test_encoder_target_selection(self, dataset):
        enc = GraphEncoder()
        bg = enc.encode(dataset.materials[:5], target="band_gap")
        fe = enc.encode(dataset.materials[:5], target="formation_energy")
        np.testing.assert_allclose(bg.targets, dataset.band_gaps()[:5])
        np.testing.assert_allclose(fe.targets,
                                   dataset.formation_energies()[:5])
        with pytest.raises(ValueError):
            enc.encode(dataset.materials[:5], target="color")

    def test_band_gap_harder_than_formation_energy(self, dataset):
        """The paper's difficulty claim, in normalized MAE."""
        train, test = dataset.split(test_fraction=0.2, seed=0)
        enc = GraphEncoder()
        scores = {}
        for prop in ("band_gap", "formation_energy"):
            r = evaluate_model("mfcgnn", train, test, encoder=enc,
                               epochs=120, seed=0, target=prop)
            scores[prop] = r.test_mae / dataset.targets(prop).std()
        assert scores["band_gap"] > 1.5 * scores["formation_energy"]

"""Tests for configs, full models, and FLOP/parameter accounting."""

import numpy as np
import pytest

from repro.models import (GPTModel, ModelConfig, TABLE_II, Tensor,
                          cross_entropy, layer_accounting,
                          model_flops_per_token, model_training_flops, preset)


class TestModelConfig:
    def test_head_dim(self):
        cfg = preset("llama-1.7b-hf-52k")
        assert cfg.head_dim == 96
        assert preset("llama-6.7b-hf-52k").head_dim == 128

    def test_eq1_violation_rejected(self):
        with pytest.raises(ValueError):
            ModelConfig(hidden_size=100, num_heads=24)

    def test_bad_arch_rejected(self):
        with pytest.raises(ValueError):
            ModelConfig(arch="gpt5")

    def test_flash_requires_head_dim_multiple_of_8(self):
        with pytest.raises(ValueError):
            ModelConfig(hidden_size=24, num_heads=4, flash_attention=1)  # hd=6

    def test_flash_v2_head_dim_cap(self):
        with pytest.raises(ValueError):
            ModelConfig(hidden_size=2048, num_heads=4, flash_attention=2)

    def test_ffn_sizes_match_param_budget(self):
        """LLaMA 3-matrix MLP ~ NeoX 2-matrix MLP in parameters (Fig 2)."""
        neox = preset("neox-1.7b-hf-52k")
        llama = preset("llama-1.7b-hf-52k")
        n_mlp = 2 * neox.hidden_size * neox.ffn_hidden_size
        l_mlp = 3 * llama.hidden_size * llama.ffn_hidden_size
        assert abs(n_mlp - l_mlp) / n_mlp < 0.01

    def test_table_ii_nominal_sizes(self):
        for key, target in [("llama-1.7b-hf-52k", 1.7e9),
                            ("neox-1.7b-hf-52k", 1.7e9),
                            ("llama-6.7b-hf-52k", 6.7e9),
                            ("neox-6.7b-hf-52k", 6.7e9)]:
            n = TABLE_II[key].num_parameters()
            assert abs(n - target) / target < 0.05, key

    def test_neox_llama_param_match(self):
        """Same-spec NeoX and LLaMA layers match within 1% (Fig 2)."""
        n = preset("neox-1.7b-hf-52k").num_parameters(include_embeddings=False)
        l = preset("llama-1.7b-hf-52k").num_parameters(include_embeddings=False)
        assert abs(n - l) / n < 0.01

    def test_with_flash_and_arch(self):
        cfg = preset("tiny-llama")
        assert cfg.with_flash(2).flash_attention == 2
        assert cfg.with_arch("neox").arch == "neox"

    def test_unknown_preset(self):
        with pytest.raises(KeyError):
            preset("gpt4")


class TestGPTModel:
    @pytest.mark.parametrize("name", ["tiny-neox", "tiny-llama"])
    def test_forward_shape(self, name):
        model = GPTModel(preset(name), seed=0)
        ids = np.zeros((2, 8), dtype=int)
        assert model(ids).shape == (2, 8, 512)

    @pytest.mark.parametrize("name", ["tiny-neox", "tiny-llama"])
    def test_analytic_params_match_live(self, name):
        model = GPTModel(preset(name), seed=0)
        assert model.num_parameters() == model.config.num_parameters()

    def test_analytic_params_match_live_small(self):
        for name in ("small-neox", "small-llama"):
            model = GPTModel(preset(name), seed=1)
            assert model.num_parameters() == model.config.num_parameters()

    def test_causal_lm_end_to_end_grad(self):
        model = GPTModel(preset("tiny-llama"), seed=0)
        rng = np.random.default_rng(0)
        ids = rng.integers(0, 512, size=(2, 12))
        loss = cross_entropy(model(ids[:, :-1]), ids[:, 1:])
        loss.backward()
        grads = [p.grad for p in model.parameters()]
        assert all(g is not None for g in grads)
        assert all(np.isfinite(g).all() for g in grads)

    def test_initial_loss_near_log_vocab(self):
        """Untrained model should be near uniform: loss ≈ ln(V)."""
        model = GPTModel(preset("tiny-neox"), seed=0)
        ids = np.random.default_rng(1).integers(0, 512, size=(4, 16))
        loss = cross_entropy(model(ids[:, :-1]), ids[:, 1:]).item()
        assert abs(loss - np.log(512)) < 0.5

    def test_seq_too_long_rejected(self):
        model = GPTModel(preset("tiny-llama"), seed=0)
        with pytest.raises(ValueError):
            model(np.zeros((1, 65), dtype=int))

    def test_loglikelihood(self):
        model = GPTModel(preset("tiny-llama"), seed=0)
        ll, greedy = model.loglikelihood(np.array([1, 2, 3]), np.array([4, 5]))
        assert ll < 0.0
        assert isinstance(greedy, bool)

    def test_loglikelihood_empty_continuation(self):
        model = GPTModel(preset("tiny-llama"), seed=0)
        with pytest.raises(ValueError):
            model.loglikelihood(np.array([1]), np.array([]))

    def test_loglikelihood_additivity(self):
        """log P(ab|ctx) = log P(a|ctx) + log P(b|ctx+a)."""
        model = GPTModel(preset("tiny-neox"), seed=0)
        ctx = np.array([5, 6, 7])
        joint, _ = model.loglikelihood(ctx, np.array([8, 9]))
        first, _ = model.loglikelihood(ctx, np.array([8]))
        second, _ = model.loglikelihood(np.array([5, 6, 7, 8]), np.array([9]))
        assert joint == pytest.approx(first + second, abs=1e-8)

    def test_embed_sequence(self):
        model = GPTModel(preset("tiny-llama"), seed=0)
        e = model.embed_sequence(np.array([1, 2, 3]))
        assert e.shape == (64,)
        e_last = model.embed_sequence(np.array([1, 2, 3]), pooling="last")
        assert e_last.shape == (64,)
        with pytest.raises(ValueError):
            model.embed_sequence(np.array([1]), pooling="cls")

    def test_generate_greedy_deterministic(self):
        model = GPTModel(preset("tiny-llama"), seed=0)
        a = model.generate(np.array([1, 2]), max_new_tokens=5)
        b = model.generate(np.array([1, 2]), max_new_tokens=5)
        np.testing.assert_array_equal(a, b)
        assert len(a) == 7

    def test_generate_sampled_uses_rng(self):
        model = GPTModel(preset("tiny-llama"), seed=0)
        a = model.generate(np.array([1]), 8, temperature=1.5,
                           rng=np.random.default_rng(0))
        b = model.generate(np.array([1]), 8, temperature=1.5,
                           rng=np.random.default_rng(0))
        np.testing.assert_array_equal(a, b)

    def test_deterministic_init(self):
        m1 = GPTModel(preset("tiny-neox"), seed=42)
        m2 = GPTModel(preset("tiny-neox"), seed=42)
        np.testing.assert_allclose(m1.embed.weight.data, m2.embed.weight.data)

    def test_neox_parallel_residual_structure(self):
        """NeoX layer output = x + attn(n1 x) + mlp(n2 x) exactly."""
        model = GPTModel(preset("tiny-neox"), seed=0)
        layer = model.layers[0]
        layer.eval()
        x = Tensor(np.random.default_rng(2).normal(size=(1, 4, 64)))
        expected = (x + layer.attn(layer.norm1(x)) +
                    layer.mlp(layer.norm2(x))).data
        np.testing.assert_allclose(layer(x).data, expected, atol=1e-12)


class TestFlopAccounting:
    def test_fig2_layer_parity(self):
        """Per-layer params and FLOPs match across families within 1%."""
        kwargs = dict(seq_len=2048, batch_size=16)
        neox = layer_accounting(preset("neox-1.7b-hf-52k"), **kwargs)
        llama = layer_accounting(preset("llama-1.7b-hf-52k"), **kwargs)
        assert abs(neox.total_params - llama.total_params) / neox.total_params < 0.01
        assert abs(neox.total_forward_flops - llama.total_forward_flops) \
            / neox.total_forward_flops < 0.01

    def test_attention_gemms_identical_across_arch(self):
        neox = layer_accounting(preset("neox-1.7b-hf-52k"))
        llama = layer_accounting(preset("llama-1.7b-hf-52k"))
        assert neox.attention_flops() == llama.attention_flops()

    def test_training_flops_is_3x_forward(self):
        acc = layer_accounting(preset("tiny-neox"), seq_len=64, batch_size=2)
        assert acc.total_training_flops == 3 * acc.total_forward_flops

    def test_components_present(self):
        comps = layer_accounting(preset("llama-1.7b-hf-52k")).flops_by_component()
        assert set(comps) == {"qkv", "score", "aov", "linproj", "mlp"}

    def test_qkv_flops_formula(self):
        cfg = preset("neox-1.7b-hf-52k")
        acc = layer_accounting(cfg, seq_len=2048, batch_size=16)
        expected = 2 * 16 * 2048 * cfg.hidden_size * 3 * cfg.hidden_size
        assert acc.flops_by_component()["qkv"] == expected

    def test_score_flops_quadratic_in_seq(self):
        cfg = preset("neox-1.7b-hf-52k")
        a = layer_accounting(cfg, seq_len=1024).flops_by_component()["score"]
        b = layer_accounting(cfg, seq_len=2048).flops_by_component()["score"]
        assert b == 4 * a

    def test_model_flops_per_token_dominated_by_6n(self):
        cfg = preset("llama-6.7b-hf-52k")
        fpt = model_flops_per_token(cfg)
        assert fpt > 6 * cfg.num_parameters()
        assert fpt < 7 * cfg.num_parameters()

    def test_total_training_flops_scale(self):
        cfg = preset("llama-1.7b-hf-52k")
        total = model_training_flops(cfg, tokens=15e9)
        # ~6 * 1.7e9 * 15e9 ≈ 1.5e20 FLOPs
        assert 1e20 < total < 3e20

    def test_gemm_bytes_positive(self):
        for g in layer_accounting(preset("tiny-neox")).gemms:
            assert g.bytes_moved() > 0

"""Tests for parallelism strategies, collectives and the step simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models import ModelConfig, preset
from repro.parallel import (CollectiveModel, GroupTopology, MessageLog,
                            ParallelConfig, PipelineSchedule,
                            TrainingSimulator, bubble_fraction,
                            build_schedule, feasible_configs)

M17 = preset("neox-1.7b-hf-52k").with_flash(1)
M67 = preset("neox-6.7b-hf-52k").with_flash(1)


class TestParallelConfig:
    def test_world_size_and_label(self):
        pc = ParallelConfig(dp=64, tp=2, pp=2)
        assert pc.world_size == 256
        assert pc.label == "TP=2+PP=2"
        assert ParallelConfig(dp=8).label == "DP"
        assert ParallelConfig(dp=8, zero_stage=1).label == "ZeRO=1"

    def test_eq2_hidden_divisible_by_tp(self):
        model = ModelConfig(hidden_size=2304, num_layers=24, num_heads=24)
        with pytest.raises(ValueError, match="Eq.2"):
            ParallelConfig(dp=2, tp=5).validate(model, gpus_per_node=10)

    def test_eq3_layers_divisible_by_pp(self):
        model = ModelConfig(hidden_size=2304, num_layers=24, num_heads=24)
        with pytest.raises(ValueError, match="Eq.3"):
            ParallelConfig(dp=8, pp=5).validate(model, gpus_per_node=8)

    def test_eq4_heads_divisible_by_tp(self):
        model = ModelConfig(hidden_size=2304, num_layers=24, num_heads=24)
        with pytest.raises(ValueError, match="Eq.4"):
            ParallelConfig(dp=1, tp=16).validate(model, gpus_per_node=8)

    def test_eq5_world_multiple_of_8(self):
        model = ModelConfig(hidden_size=2304, num_layers=24, num_heads=24)
        with pytest.raises(ValueError, match="Eq.5"):
            ParallelConfig(dp=3).validate(model, gpus_per_node=8)

    def test_zero_requires_dp(self):
        with pytest.raises(ValueError):
            ParallelConfig(dp=1, zero_stage=1)

    def test_feasible_configs_all_valid(self):
        configs = feasible_configs(M67, 64)
        assert configs
        for pc in configs:
            assert pc.world_size == 64
            assert pc.is_valid(M67)

    def test_feasible_configs_include_paper_layouts(self):
        labels = {pc.label for pc in feasible_configs(M67, 256)}
        assert {"DP", "ZeRO=1", "TP=2", "PP=2"} <= labels

    @settings(max_examples=20, deadline=None)
    @given(st.sampled_from([8, 16, 64, 256]), st.sampled_from([1, 2, 4]),
           st.sampled_from([1, 2, 4]))
    def test_property_feasible_product(self, n, tp, pp):
        for pc in feasible_configs(M67, n, max_tp=tp, max_pp=pp):
            assert pc.dp * pc.tp * pc.pp == n


class TestCollectives:
    @pytest.fixture(scope="class")
    def cm(self):
        return CollectiveModel()

    def test_bandwidth_hierarchy(self, cm):
        bw_pkg = cm.effective_bandwidth(GroupTopology(2, "package"))
        bw_node = cm.effective_bandwidth(GroupTopology(8, "node"))
        bw_sys = cm.effective_bandwidth(GroupTopology(64, "system"))
        assert bw_pkg > bw_node > bw_sys

    def test_scale_degradation_beyond_64(self, cm):
        bw64 = cm.effective_bandwidth(GroupTopology(64, "system"))
        bw256 = cm.effective_bandwidth(GroupTopology(256, "system"))
        assert bw256 < bw64

    def test_allreduce_equals_rs_plus_ag_volume(self, cm):
        """Ring allreduce time ≈ reduce-scatter + allgather times."""
        g = GroupTopology(8, "node")
        ar = cm.allreduce(1 << 30, g).seconds
        rs = cm.reduce_scatter(1 << 30, g).seconds
        ag = cm.allgather(1 << 30, g).seconds
        assert ar == pytest.approx(rs + ag, rel=1e-6)

    def test_single_rank_groups_free(self, cm):
        g = GroupTopology(1, "package")
        assert cm.allreduce(1 << 20, g).seconds == 0.0
        assert cm.allgather(1 << 20, g).seconds == 0.0

    def test_latency_dominates_small_messages(self, cm):
        g = GroupTopology(256, "system")
        t_small = cm.allreduce(1024, g).seconds
        assert t_small > 2 * 255 * cm.latency_s * 0.99

    def test_placement(self):
        assert GroupTopology.place(2).span == "package"
        assert GroupTopology.place(8).span == "node"
        assert GroupTopology.place(16).span == "system"

    def test_p2p_time(self, cm):
        e = cm.p2p(100 * 1000**3 // 1, span="node")
        assert e.seconds == pytest.approx(1.0, rel=0.01)


class TestCommSchedules:
    @pytest.fixture(scope="class")
    def cm(self):
        return CollectiveModel()

    def test_fig11_dp_volume_2x(self, cm):
        sched = build_schedule(M17, ParallelConfig(dp=256), cm, 2048, 16384)
        assert sched.log.volume_vs_model_size(M17) == pytest.approx(2.0, abs=0.05)

    def test_fig11_zero_volume_2x(self, cm):
        sched = build_schedule(M67, ParallelConfig(dp=256, zero_stage=1), cm,
                               2048, 16384)
        assert sched.log.volume_vs_model_size(M67) == pytest.approx(2.0, abs=0.05)

    def test_fig11_tp_volume_3x(self, cm):
        sched = build_schedule(M67, ParallelConfig(dp=128, tp=2), cm,
                               2048, 16384)
        assert sched.log.volume_vs_model_size(M67) == pytest.approx(3.0, abs=0.25)

    def test_fig11_call_count_order_of_magnitude(self, cm):
        dp = build_schedule(M17, ParallelConfig(dp=256), cm, 2048, 16384)
        zero = build_schedule(M67, ParallelConfig(dp=256, zero_stage=1), cm,
                              2048, 16384)
        tp = build_schedule(M67, ParallelConfig(dp=128, tp=2), cm, 2048, 16384)
        assert zero.log.num_calls >= 5 * dp.log.num_calls
        assert tp.log.num_calls >= 5 * dp.log.num_calls

    def test_message_log_histogram(self, cm):
        sched = build_schedule(M67, ParallelConfig(dp=256, zero_stage=1), cm,
                               2048, 16384)
        counts, edges = sched.log.histogram()
        assert counts.sum() == sched.log.num_calls
        assert len(edges) == len(counts) + 1

    def test_exposed_never_exceeds_total(self, cm):
        for pc in [ParallelConfig(dp=256), ParallelConfig(dp=256, zero_stage=1),
                   ParallelConfig(dp=128, tp=2), ParallelConfig(dp=128, pp=2)]:
            sched = build_schedule(M67, pc, cm, 2048, 16384)
            assert 0 <= sched.exposed_seconds <= sched.total_seconds + 1e-12

    def test_by_op_totals(self, cm):
        sched = build_schedule(M67, ParallelConfig(dp=256, zero_stage=1), cm,
                               2048, 16384)
        by = sched.log.by_op()
        assert set(by) == {"reducescatter", "allgather"}
        assert sum(d["calls"] for d in by.values()) == sched.log.num_calls

    def test_empty_log(self):
        log = MessageLog()
        assert log.num_calls == 0 and log.total_bytes == 0


class TestPipeline:
    def test_bubble_fraction_formula(self):
        assert bubble_fraction(1, 4) == 0.0
        assert bubble_fraction(2, 2) == pytest.approx(1 / 3)
        assert bubble_fraction(4, 12) == pytest.approx(3 / 15)

    def test_bubble_shrinks_with_microbatches(self):
        assert bubble_fraction(2, 16) < bubble_fraction(2, 2)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            bubble_fraction(0, 4)

    def test_schedule_total_exceeds_compute(self):
        s = PipelineSchedule(pp=2, micro_batches=2,
                             per_microbatch_compute_s=0.1,
                             per_boundary_p2p_s=0.001)
        assert s.total_seconds > s.compute_seconds
        assert s.bubble_seconds > 0

    def test_pp1_no_bubble(self):
        s = PipelineSchedule(pp=1, micro_batches=4,
                             per_microbatch_compute_s=0.1,
                             per_boundary_p2p_s=0.001)
        assert s.bubble_seconds == 0.0


class TestSimulator:
    @pytest.fixture(scope="class")
    def sim(self):
        return TrainingSimulator()

    def test_fig7_zero1_best_single_node_67b(self, sim):
        """6.7B on one node: ZeRO-1 > TP=2 > PP=2 (paper Fig 7)."""
        zero = sim.per_gcd_tflops(M67, ParallelConfig(dp=8, zero_stage=1))
        tp = sim.per_gcd_tflops(M67, ParallelConfig(dp=4, tp=2))
        pp = sim.per_gcd_tflops(M67, ParallelConfig(dp=4, pp=2))
        assert zero > tp > pp
        assert 75 < zero < 92  # paper: 81 TFLOPS/GCD

    def test_fig7_pp_much_worse(self, sim):
        zero = sim.per_gcd_tflops(M67, ParallelConfig(dp=8, zero_stage=1))
        pp = sim.per_gcd_tflops(M67, ParallelConfig(dp=4, pp=2))
        assert pp < 0.8 * zero

    def test_fig8_dp_17b_scaling(self, sim):
        """1.7B DP: >18 PFLOPS aggregate at 256 GPUs, ~88% efficiency."""
        pts = sim.scaling_sweep(M17, "dp", [8, 64, 256])
        final = pts[-1]
        assert final.aggregate_pflops > 17.0
        assert 0.80 < final.efficiency <= 1.0

    def test_fig8_zero_drops_beyond_64(self, sim):
        pts = {p.n_gpus: p.per_gcd_tflops
               for p in sim.scaling_sweep(M67, "zero1", [8, 64, 128, 256])}
        # roughly flat to 64, then a clear drop
        assert pts[64] > 0.80 * pts[8]
        assert pts[256] < 0.92 * pts[64]

    def test_fig8_tp2_overtakes_zero_at_scale(self, sim):
        zero = sim.per_gcd_tflops(M67, ParallelConfig(dp=256, zero_stage=1))
        tp = sim.per_gcd_tflops(M67, ParallelConfig(dp=128, tp=2))
        assert tp > zero

    def test_fig8_kernel_fractions(self, sim):
        """rocprof aggregation at 256 GPUs: ZeRO comm large, IO ~5%."""
        zero = sim.step(M67, ParallelConfig(dp=256, zero_stage=1))
        fr = zero.kernel_fractions()
        assert 0.25 < fr["comm"] < 0.50   # paper: ~40%
        assert 0.02 < fr["io"] < 0.08     # paper: ~5%
        dp = sim.step(M17, ParallelConfig(dp=256)).kernel_fractions()
        assert dp["comm"] < fr["comm"]
        assert sum(fr.values()) == pytest.approx(1.0)

    def test_memory_check_oom_for_67b_plain_dp(self, sim):
        prof = sim.step(M67, ParallelConfig(dp=8), check_memory=True)
        assert not prof.memory.fits
        prof2 = sim.step(M67, ParallelConfig(dp=8, zero_stage=1),
                         check_memory=True)
        assert prof2.memory.fits

    def test_observation2_minimal_model_parallelism(self, sim):
        """DP-only beats adding TP/PP for a model that fits (1.7B)."""
        dp = sim.per_gcd_tflops(M17, ParallelConfig(dp=256))
        tp = sim.per_gcd_tflops(M17, ParallelConfig(dp=128, tp=2))
        pp = sim.per_gcd_tflops(M17, ParallelConfig(dp=128, pp=2))
        assert dp > tp and dp > pp

    def test_invalid_world_size_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.step(M17, ParallelConfig(dp=3))

    def test_unknown_strategy(self, sim):
        with pytest.raises(ValueError):
            sim.scaling_sweep(M17, "fsdp", [8])

    def test_step_profile_totals(self, sim):
        p = sim.step(M67, ParallelConfig(dp=64, zero_stage=1))
        assert p.total_s == pytest.approx(
            p.compute_s + p.comm_exposed_s + p.io_s + p.bubble_s)
        assert p.comm_exposed_s <= p.comm_total_s

"""Tests for the batch-size scaling study utilities."""

import numpy as np
import pytest

from repro.data import AbstractGenerator, PackedDataset
from repro.models import preset
from repro.tokenizers import BPETokenizer
from repro.training import batch_scaling_study, scaled_lr


@pytest.fixture(scope="module")
def dataset():
    texts = [d.text for d in AbstractGenerator(seed=0).sample(120)]
    tok = BPETokenizer().train(texts, 450)
    return PackedDataset.from_texts(texts, tok, seq_len=32)


class TestScaledLR:
    def test_adam_sqrt_rule(self):
        assert scaled_lr("adam", 1e-3, 4.0) == pytest.approx(2e-3)

    def test_lamb_linear_rule(self):
        assert scaled_lr("lamb", 1e-3, 4.0) == pytest.approx(4e-3)

    def test_ratio_one_is_identity(self):
        for opt in ("adam", "lamb", "sgd"):
            assert scaled_lr(opt, 7e-4, 1.0) == pytest.approx(7e-4)

    def test_unknown_optimizer(self):
        with pytest.raises(ValueError):
            scaled_lr("adafactor", 1e-3, 2.0)


class TestBatchScalingStudy:
    def test_token_budget_matched(self, dataset):
        curves = batch_scaling_study(dataset, preset("tiny-llama"),
                                     batch_sizes=(2, 4),
                                     optimizers=("adam",),
                                     base_lr=5e-3,
                                     token_budget=2 * 32 * 40)
        points = curves["adam"].points
        assert points[0].tokens == points[1].tokens
        assert points[0].steps == 2 * points[1].steps

    def test_lr_scaled_per_point(self, dataset):
        curves = batch_scaling_study(dataset, preset("tiny-llama"),
                                     batch_sizes=(2, 8),
                                     optimizers=("adam", "lamb"),
                                     base_lr=4e-3,
                                     token_budget=2 * 32 * 20)
        adam = curves["adam"].points
        lamb = curves["lamb"].points
        assert adam[1].lr == pytest.approx(4e-3 * 2.0)   # sqrt(4)
        assert lamb[1].lr == pytest.approx(4e-3 * 4.0)   # linear

    def test_degradation_metric(self, dataset):
        curves = batch_scaling_study(dataset, preset("tiny-llama"),
                                     batch_sizes=(2, 4),
                                     optimizers=("adam",),
                                     base_lr=5e-3,
                                     token_budget=2 * 32 * 30)
        curve = curves["adam"]
        expected = (curve.points[-1].final_val_loss /
                    curve.points[0].final_val_loss - 1.0)
        assert curve.degradation() == pytest.approx(expected)
        assert len(curve.losses()) == 2

    def test_batch_sizes_validated(self, dataset):
        with pytest.raises(ValueError):
            batch_scaling_study(dataset, preset("tiny-llama"),
                                batch_sizes=(8,))
        with pytest.raises(ValueError):
            batch_scaling_study(dataset, preset("tiny-llama"),
                                batch_sizes=(8, 4))

    def test_deterministic(self, dataset):
        kwargs = dict(batch_sizes=(2, 4), optimizers=("adam",),
                      base_lr=5e-3, token_budget=2 * 32 * 10, seed=3)
        a = batch_scaling_study(dataset, preset("tiny-llama"), **kwargs)
        b = batch_scaling_study(dataset, preset("tiny-llama"), **kwargs)
        np.testing.assert_allclose(a["adam"].losses(), b["adam"].losses())

"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        for cmd in ("observations", "heatmap", "scaling", "recommend",
                    "study", "serve-bench", "lint"):
            args = parser.parse_args([cmd] if cmd != "recommend"
                                     else [cmd, "--gpus", "8"])
            assert args.command == cmd

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_recommend_defaults(self):
        args = build_parser().parse_args(["recommend"])
        assert args.model == "neox-6.7b-hf-52k"
        assert args.gpus == 256
        assert args.flash == 1

    def test_heatmap_arch_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["heatmap", "--arch", "bert"])

    def test_serve_bench_defaults_and_alias(self):
        args = build_parser().parse_args(["serve-bench"])
        assert args.model == "tiny-llama"
        assert args.requests == 64
        assert args.policy == "fcfs"
        alias = build_parser().parse_args(["serve"])
        assert alias.requests == args.requests

    def test_serve_bench_policy_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve-bench", "--policy", "edf"])

    def test_cluster_bench_defaults_and_alias(self):
        args = build_parser().parse_args(["cluster-bench"])
        assert args.model == "llama-1.7b-hf-52k"
        assert args.nodes == "4"
        assert args.policy == "all"
        assert args.layout == "8xTP1"
        assert args.requests == 200
        assert args.rate == 800.0
        assert args.prompt_skew == 0.15
        alias = build_parser().parse_args(["cluster"])
        assert alias.requests == args.requests

    def test_cluster_bench_policy_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cluster-bench", "--policy",
                                       "random"])

    def test_fault_bench_defaults_and_alias(self):
        args = build_parser().parse_args(["fault-bench"])
        assert args.mode == "both"
        assert args.train_mtbf == "inf,4,1"
        assert args.serve_mtbf == "inf,0.001,0.0002"
        assert args.max_retries == 3
        alias = build_parser().parse_args(["faults"])
        assert alias.mode == args.mode

    def test_fault_bench_mode_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fault-bench", "--mode", "chaos"])


class TestCommands:
    def test_observations_exit_zero(self, capsys):
        assert main(["observations"]) == 0
        out = capsys.readouterr().out
        assert "Observation 1: HOLDS" in out
        assert "Observation 3: HOLDS" in out

    def test_heatmap_output(self, capsys):
        assert main(["heatmap"]) == 0
        out = capsys.readouterr().out
        assert "24L x 2304h" in out
        assert "flash-attention boost" in out

    def test_scaling_output(self, capsys):
        assert main(["scaling"]) == 0
        out = capsys.readouterr().out
        assert "6.7B ZeRO-1" in out and "256" in out

    def test_recommend_output(self, capsys):
        assert main(["recommend", "--model", "neox-6.7b-hf-52k",
                     "--gpus", "256"]) == 0
        out = capsys.readouterr().out
        assert "recommended: TP=2" in out
        assert "OOM" in out  # plain DP is listed as infeasible

    def test_recommend_17b_prefers_dp(self, capsys):
        assert main(["recommend", "--model", "neox-1.7b-hf-52k",
                     "--gpus", "256"]) == 0
        assert "recommended: DP" in capsys.readouterr().out

    def test_serve_bench_smoke(self, capsys):
        assert main(["serve-bench", "--requests", "12",
                     "--compare-sequential"]) == 0
        out = capsys.readouterr().out
        assert "requests completed" in out
        assert "TTFT" in out
        assert "speedup" in out
        assert "Frontier-node extrapolation" in out

    def test_serve_bench_trace_export(self, capsys, tmp_path):
        trace = tmp_path / "serve-trace.json"
        assert main(["serve-bench", "--requests", "8", "--trace",
                     str(trace)]) == 0
        assert "wrote Chrome trace" in capsys.readouterr().out
        assert trace.exists()

    def test_serve_bench_unknown_preset_exits_2(self, capsys):
        assert main(["serve-bench", "--model", "gpt-5"]) == 2
        assert "error" in capsys.readouterr().err

    def test_serve_bench_invalid_workload_exits_2(self, capsys):
        assert main(["serve-bench", "--requests", "0"]) == 2
        assert "num_requests" in capsys.readouterr().err

    def test_serve_bench_impossible_pool_exits_2(self, capsys):
        assert main(["serve-bench", "--pool-blocks", "1"]) == 2
        assert "never fit" in capsys.readouterr().err

    def test_cluster_bench_smoke(self, capsys, tmp_path):
        trace = tmp_path / "trace.json"
        assert main(["cluster-bench", "--smoke", "--trace",
                     str(trace)]) == 0
        out = capsys.readouterr().out
        assert "cluster sweep" in out
        for policy in ("round-robin", "least-outstanding", "jskq"):
            assert policy in out
        assert "p99 TTFT" in out
        assert "wrote Chrome trace" in out
        assert trace.exists()

    def test_cluster_bench_unknown_preset_exits_2(self, capsys):
        assert main(["cluster-bench", "--model", "gpt-5"]) == 2
        assert "error" in capsys.readouterr().err

    def test_fault_bench_smoke(self, capsys, tmp_path):
        results = tmp_path / "faults.json"
        assert main(["fault-bench", "--smoke", "--json",
                     str(results)]) == 0
        out = capsys.readouterr().out
        assert "fault-free baseline" in out
        assert "Young-Daly" in out
        assert "goodput" in out
        assert "avail" in out
        assert results.exists()
        import json
        data = json.loads(results.read_text())
        assert data["training"] and data["serving"]
        assert data["training"][0]["mtbf_hours"] == "inf"

    def test_fault_bench_serving_only(self, capsys):
        assert main(["fault-bench", "--smoke", "--mode", "serving",
                     "--serve-mtbf", "inf"]) == 0
        out = capsys.readouterr().out
        assert "Young-Daly" not in out
        assert "100.0%" in out

    def test_fault_bench_bad_mtbf_exits_2(self, capsys):
        assert main(["fault-bench", "--smoke", "--mode", "serving",
                     "--serve-mtbf", "soon"]) == 2
        assert "--serve-mtbf" in capsys.readouterr().err

    def test_fault_bench_unknown_preset_exits_2(self, capsys):
        assert main(["fault-bench", "--smoke", "--mode", "serving",
                     "--model", "gpt-5"]) == 2
        assert "error" in capsys.readouterr().err

    def test_cluster_bench_bad_layout_exits_2(self, capsys):
        assert main(["cluster-bench", "--smoke", "--layout", "8x1"]) == 2
        assert "layout" in capsys.readouterr().err

    def test_cluster_bench_oversized_layout_exits_2(self, capsys):
        assert main(["cluster-bench", "--smoke", "--layout",
                     "8xTP8"]) == 2
        assert "GCDs" in capsys.readouterr().err

"""Tests for the programmatic experiment registry."""

import numpy as np
import pytest

from repro.core import (EXPERIMENTS, ExperimentContext, list_experiments,
                        reproduce, reproduce_all)


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext(train_steps=40)


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        ids = set(EXPERIMENTS)
        assert {"table1", "table2", "table3", "table4", "table5"} <= ids
        assert {"fig4", "fig5", "fig8", "fig11", "fig13"} <= ids
        assert len(ids) >= 17

    def test_list_experiments_rows(self):
        rows = list_experiments()
        assert len(rows) == len(EXPERIMENTS)
        assert all({"id", "title", "kind", "heavy"} <= set(r) for r in rows)

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            reproduce("fig99")

    def test_light_set_excludes_heavy(self, ctx):
        results = reproduce_all(ctx)
        assert "table5" not in results
        assert "fig4" in results
        assert len(results) == sum(not s.heavy for s in EXPERIMENTS.values())


class TestLightExperiments:
    def test_table1_totals(self, ctx):
        rows = reproduce("table1", ctx).data["rows"]
        total = [r for r in rows if r["source"] == "All"][0]
        assert total["abstracts"] == 2650

    def test_table4_shape(self, ctx):
        rows = reproduce("table4", ctx).data["rows"]
        by = {r["model"]: r for r in rows}
        assert by["6.7B"]["hours"] > 3 * by["1.7B"]["hours"]
        assert by["1.7B"]["tflops_per_watt"] > by["6.7B"]["tflops_per_watt"]

    def test_fig4_best_cell(self, ctx):
        best = reproduce("fig4", ctx).data["best"]
        assert (best["layers"], best["hidden"]) == (24, 2304)

    def test_fig5_anchors(self, ctx):
        data = reproduce("fig5", ctx).data
        assert data["max_seq_no_flash"] == 8192
        assert data["max_seq_flash"] == 32768

    def test_fig8_sweeps_complete(self, ctx):
        data = reproduce("fig8", ctx).data
        assert set(data["sweeps"]) == {"1.7b-dp", "6.7b-zero1", "6.7b-tp2"}
        for sweep in data["sweeps"].values():
            assert [p["gpus"] for p in sweep] == data["gpus"]

    def test_fig11_volumes(self, ctx):
        rows = {r["run"]: r for r in reproduce("fig11", ctx).data["rows"]}
        assert rows["dp"]["vs_model_size"] == pytest.approx(2.0, abs=0.05)
        assert rows["tp2"]["vs_model_size"] == pytest.approx(3.0, abs=0.3)

    def test_fig13_orderings(self, ctx):
        finals = reproduce("fig13", ctx).data["finals"]
        lamb = finals["1.7B-llama-HF-52K-Lamb-4M"]
        adam = finals["1.7B-llama-HF-52K-Adam-1M"]
        assert lamb < adam

    def test_results_json_serializable(self, ctx):
        import json
        for exp_id in ("table2", "fig2", "fig6", "fig10"):
            json.dumps(reproduce(exp_id, ctx).data, default=str)


class TestHeavyExperiments:
    def test_fig14_uses_shared_trained_models(self, ctx):
        """Context caches one trained model per arch across experiments."""
        data = reproduce("fig14", ctx).data
        assert set(data) == {"neox", "llama"}
        for accs in data.values():
            assert all(0 <= a <= 1 for a in accs.values())
        # Cached: a second call reuses the trained model (fast).
        model_a = ctx.trained_model("llama")
        model_b = ctx.trained_model("llama")
        assert model_a is model_b

    def test_fig16_anisotropy(self, ctx):
        data = reproduce("fig16", ctx).data
        assert data["gpt"]["mean_cosine"] > data["bert"]["mean_cosine"]
        assert data["gpt"]["anisotropic"]
        assert not data["bert"]["anisotropic"]

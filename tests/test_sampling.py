"""Tests for per-request sampling through the serving stack.

The contract: ``sample_token`` is op-for-op identical to
``GPTModel._pick``, each request draws from its own seeded
``np.random.Generator`` (so a sampled run is reproducible across
restarts and across preemption — state capture preserves the emitted
prefix and rng position instead of recomputing), and turning sampling
on in ``WorkloadConfig`` does not shift the seeded arrival/length
draw stream.
"""

import numpy as np
import pytest

from repro.models import GPTModel, ModelConfig
from repro.models.speculative import (SamplingParams, request_rng,
                                      sample_token, warp_probs)
from repro.serving import (Request, SchedulerConfig, ServingConfig,
                           ServingEngine, WorkloadConfig, run_sequential,
                           synthesize_workload)
from repro.serving.kv_pool import KVPoolConfig, PagedKVPool
from repro.serving.scheduler import ContinuousBatchScheduler


def tiny_config(arch="llama", **kw):
    return ModelConfig(arch=arch, hidden_size=64, num_layers=2,
                       num_heads=4, vocab_size=512, max_seq_len=64,
                       name=f"tiny-{arch}", **kw)


def sampled_requests(config, n=6, tokens=16, temperature=0.9, top_k=16,
                     seed=7):
    rng = np.random.default_rng(seed)
    return [Request(request_id=i,
                    prompt=rng.integers(0, config.vocab_size,
                                        size=int(rng.integers(6, 14))),
                    max_new_tokens=tokens, arrival_time=0.001 * i,
                    temperature=temperature, top_k=top_k,
                    sampling_seed=1000 + i)
            for i in range(n)]


PARAM_GRID = [
    SamplingParams(temperature=0.7),
    SamplingParams(temperature=1.3, top_k=5),
    SamplingParams(temperature=0.9, top_p=0.8),
    SamplingParams(temperature=1.0, top_k=12, top_p=0.6),
    SamplingParams(),  # greedy
]


class TestSampleToken:
    @pytest.mark.parametrize("params", PARAM_GRID,
                             ids=lambda p: repr(p)[:40])
    def test_bit_identical_to_model_pick(self, params):
        """Same logits + same rng state => the exact same token."""
        rng = np.random.default_rng(0)
        for trial in range(20):
            logits = rng.normal(size=128) * 3.0
            a = sample_token(logits, params, request_rng(trial))
            b = GPTModel._pick(logits, params.temperature,
                               request_rng(trial), top_k=params.top_k,
                               top_p=params.top_p)
            assert a == b

    def test_greedy_ignores_rng(self):
        logits = np.array([0.1, 5.0, -2.0])
        assert sample_token(logits, SamplingParams(), None) == 1

    def test_sampling_requires_rng(self):
        with pytest.raises(ValueError, match="rng"):
            sample_token(np.zeros(4), SamplingParams(temperature=1.0),
                         None)


class TestWarpProbs:
    def test_is_a_distribution(self):
        p = warp_probs(np.random.default_rng(1).normal(size=64),
                       SamplingParams(temperature=0.8))
        assert p.shape == (64,) and (p >= 0).all()
        assert p.sum() == pytest.approx(1.0)

    def test_top_k_limits_support(self):
        p = warp_probs(np.random.default_rng(2).normal(size=64),
                       SamplingParams(temperature=1.0, top_k=5))
        assert (p > 0).sum() <= 5

    def test_top_p_keeps_nucleus(self):
        logits = np.random.default_rng(3).normal(size=64)
        p = warp_probs(logits, SamplingParams(temperature=1.0, top_p=0.5))
        full = warp_probs(logits, SamplingParams(temperature=1.0))
        kept = p > 0
        # The nucleus is the smallest prefix of the sorted distribution
        # reaching top_p: it always contains the argmax and sums >= 0.5.
        assert kept[full.argmax()]
        assert full[kept].sum() >= 0.5

    def test_temperature_sharpens(self):
        logits = np.random.default_rng(4).normal(size=64)
        cold = warp_probs(logits, SamplingParams(temperature=0.25))
        hot = warp_probs(logits, SamplingParams(temperature=2.0))
        assert cold.max() > hot.max()


class TestRequestRng:
    def test_deterministic_and_distinct(self):
        a = request_rng(42).random(4)
        b = request_rng(42).random(4)
        c = request_rng(43).random(4)
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_make_rng_matches_request_seed(self):
        req = Request(request_id=5, prompt=np.zeros(4, dtype=np.int64),
                      max_new_tokens=4, temperature=1.0,
                      sampling_seed=99)
        np.testing.assert_array_equal(req.make_rng().random(4),
                                      request_rng(99).random(4))
        no_seed = Request(request_id=5,
                          prompt=np.zeros(4, dtype=np.int64),
                          max_new_tokens=4, temperature=1.0)
        np.testing.assert_array_equal(no_seed.make_rng().random(4),
                                      request_rng(5).random(4))


class TestEngineSampling:
    def test_restart_determinism(self):
        """Two identical sampled runs emit identical tokens."""
        config = tiny_config()
        model = GPTModel(config, seed=0)
        serving = ServingConfig(num_blocks=64, block_size=8,
                                max_batch_size=4)
        first = ServingEngine(model, serving).run(
            sampled_requests(config))
        second = ServingEngine(model, serving).run(
            sampled_requests(config))
        assert sorted(first.outputs) == sorted(second.outputs)
        for i in first.outputs:
            np.testing.assert_array_equal(first.outputs[i],
                                          second.outputs[i])

    def test_batched_matches_sequential(self):
        """Batched sampled decode == the sequential generate baseline."""
        config = tiny_config()
        model = GPTModel(config, seed=0)
        serving = ServingConfig(num_blocks=64, block_size=8,
                                max_batch_size=4)
        batched = ServingEngine(model, serving).run(
            sampled_requests(config))
        sequential = run_sequential(model, sampled_requests(config),
                                    serving)
        for i in batched.outputs:
            np.testing.assert_array_equal(batched.outputs[i],
                                          sequential.outputs[i])

    def test_preemption_state_capture_preserves_outputs(self):
        """A starved pool forces preemptions; sampled outputs survive.

        Sampled requests cannot be replayed by recompute (the rng
        stream would be consumed twice), so preemption captures KV +
        emitted prefix + rng state and restores on re-admission.
        """
        config = tiny_config()
        model = GPTModel(config, seed=0)
        roomy = ServingEngine(model, ServingConfig(
            num_blocks=256, block_size=8, max_batch_size=4)).run(
                sampled_requests(config))
        starved = ServingEngine(model, ServingConfig(
            num_blocks=12, block_size=8, max_batch_size=4)).run(
                sampled_requests(config))
        assert roomy.metrics.preemptions == 0
        assert starved.metrics.preemptions > 0
        for i in roomy.outputs:
            np.testing.assert_array_equal(roomy.outputs[i],
                                          starved.outputs[i])

    def test_preemption_greedy_recompute_parity(self):
        """Greedy requests keep the legacy recompute path; same outputs."""
        config = tiny_config()
        model = GPTModel(config, seed=0)
        reqs = lambda: sampled_requests(config, temperature=0.0, top_k=0)
        roomy = ServingEngine(model, ServingConfig(
            num_blocks=256, block_size=8, max_batch_size=4)).run(reqs())
        starved = ServingEngine(model, ServingConfig(
            num_blocks=12, block_size=8, max_batch_size=4)).run(reqs())
        assert starved.metrics.preemptions > 0
        for i in roomy.outputs:
            np.testing.assert_array_equal(roomy.outputs[i],
                                          starved.outputs[i])


class TestWorkloadSampling:
    def test_sampling_does_not_shift_draw_stream(self):
        """temperature>0 must not consume extra rng draws.

        Sampling seeds are derived arithmetically from (seed, index),
        so the seeded arrival/prompt/length stream is bit-identical
        whether or not the workload samples.
        """
        config = tiny_config()
        greedy = synthesize_workload(
            WorkloadConfig(num_requests=12, seed=5), config)
        sampled = synthesize_workload(
            WorkloadConfig(num_requests=12, seed=5, temperature=0.8,
                           top_k=20), config)
        for g, s in zip(greedy, sampled):
            assert g.arrival_time == s.arrival_time
            assert g.max_new_tokens == s.max_new_tokens
            np.testing.assert_array_equal(g.prompt, s.prompt)
            assert g.temperature == 0.0 and g.sampling_seed is None
            assert s.temperature == 0.8 and s.top_k == 20
            assert s.sampling_seed is not None

    def test_sampling_seeds_distinct_and_reproducible(self):
        config = tiny_config()
        cfg = WorkloadConfig(num_requests=12, seed=5, temperature=0.8)
        seeds = [r.sampling_seed
                 for r in synthesize_workload(cfg, config)]
        again = [r.sampling_seed
                 for r in synthesize_workload(cfg, config)]
        assert seeds == again
        assert len(set(seeds)) == len(seeds)

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadConfig(temperature=-0.1)
        with pytest.raises(ValueError):
            WorkloadConfig(top_p=0.0)
        with pytest.raises(ValueError):
            WorkloadConfig(top_k=-1)


class TestBucketing:
    def _sched(self, **kw):
        pool = PagedKVPool(tiny_config(),
                           KVPoolConfig(block_size=8, num_blocks=64))
        return ContinuousBatchScheduler(pool, SchedulerConfig(**kw))

    def test_bucketed_fcfs_groups_lengths(self):
        """bucket_tokens co-admits similar prompt lengths."""
        sched = self._sched(max_batch_size=8, bucket_tokens=8)
        lengths = [30, 5, 29, 6, 31, 4]
        for i, n in enumerate(lengths):
            sched.submit(Request(request_id=i,
                                 prompt=np.zeros(n, dtype=np.int64),
                                 max_new_tokens=4,
                                 arrival_time=0.001 * i))
        sched._sort_waiting()
        buckets = [r.prompt_len // 8 for r in sched.waiting]
        assert buckets == sorted(buckets)
        # Arrival order holds inside a bucket.
        short = [r.request_id for r in sched.waiting
                 if r.prompt_len // 8 == 0]
        assert short == sorted(short)

    def test_zero_keeps_pure_fcfs(self):
        sched = self._sched(max_batch_size=8)
        for i, n in enumerate([30, 5, 29]):
            sched.submit(Request(request_id=i,
                                 prompt=np.zeros(n, dtype=np.int64),
                                 max_new_tokens=4,
                                 arrival_time=0.001 * i))
        sched._sort_waiting()
        assert [r.request_id for r in sched.waiting] == [0, 1, 2]

    def test_engine_outputs_invariant_under_bucketing(self):
        """Bucketing reorders admission, never changes what is decoded."""
        config = tiny_config()
        model = GPTModel(config, seed=0)
        plain = ServingEngine(model, ServingConfig(
            num_blocks=64, block_size=8, max_batch_size=4)).run(
                sampled_requests(config, n=8))
        bucketed = ServingEngine(model, ServingConfig(
            num_blocks=64, block_size=8, max_batch_size=4,
            bucket_tokens=8)).run(sampled_requests(config, n=8))
        assert sorted(plain.outputs) == sorted(bucketed.outputs)
        for i in plain.outputs:
            np.testing.assert_array_equal(plain.outputs[i],
                                          bucketed.outputs[i])

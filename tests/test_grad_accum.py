"""Tests for gradient accumulation and trainer checkpoint/resume."""

import numpy as np
import pytest

from repro.data import AbstractGenerator, PackedDataset
from repro.models import GPTModel, preset
from repro.tokenizers import BPETokenizer
from repro.training import Trainer, TrainerConfig


@pytest.fixture(scope="module")
def dataset():
    texts = [d.text for d in AbstractGenerator(seed=0).sample(100)]
    tok = BPETokenizer().train(texts, 450)
    return PackedDataset.from_texts(texts, tok, seq_len=32)


def run(dataset, batch, accum, steps=6, seed=0):
    model = GPTModel(preset("tiny-llama"), seed=seed)
    trainer = Trainer(model, dataset, TrainerConfig(
        optimizer="adam", lr=5e-3, batch_size=batch,
        grad_accum_steps=accum, max_steps=steps, eval_every=10 ** 9,
        seed=seed))
    history = trainer.train()
    return model, history


class TestGradientAccumulation:
    def test_equivalent_to_large_batch(self, dataset):
        """k micro-batches with 1/k loss scaling == one kx batch.

        Both runs shuffle with the same seed, so two consecutive
        4-sequence micro-batches contain exactly the samples of one
        8-sequence batch.
        """
        big_model, big_hist = run(dataset, batch=8, accum=1)
        acc_model, acc_hist = run(dataset, batch=4, accum=2)
        for key in big_model.state_dict():
            np.testing.assert_allclose(
                acc_model.state_dict()[key], big_model.state_dict()[key],
                atol=1e-9, err_msg=key)
        np.testing.assert_allclose(acc_hist.train_loss,
                                   big_hist.train_loss, atol=1e-9)

    def test_reported_loss_is_microbatch_mean(self, dataset):
        _, hist = run(dataset, batch=4, accum=2, steps=3)
        assert len(hist.train_loss) == 3
        assert all(np.isfinite(hist.train_loss))

    def test_optimizer_steps_counted_per_global_step(self, dataset):
        model = GPTModel(preset("tiny-llama"), seed=0)
        trainer = Trainer(model, dataset, TrainerConfig(
            optimizer="adam", lr=5e-3, batch_size=4, grad_accum_steps=4,
            max_steps=5, eval_every=10 ** 9))
        trainer.train()
        assert trainer.optimizer.step_count == 5

    def test_invalid_accum(self):
        with pytest.raises(ValueError):
            TrainerConfig(grad_accum_steps=0)


class TestTrainerCheckpoint:
    def test_save_resume_continues_trajectory(self, dataset, tmp_path):
        cfg = TrainerConfig(optimizer="adam", lr=5e-3, batch_size=8,
                            max_steps=10, eval_every=10 ** 9, seed=0)

        # Uninterrupted baseline.
        ref_model = GPTModel(preset("tiny-llama"), seed=0)
        Trainer(ref_model, dataset, cfg).train()

        # Train 5 steps of the SAME full-run config, checkpoint, restore
        # into a fresh trainer, finish.
        m1 = GPTModel(preset("tiny-llama"), seed=0)
        t1 = Trainer(m1, dataset, cfg)
        t1.train(stop_step=5)
        path = t1.save(tmp_path / "run", step=5)

        m2 = GPTModel(preset("tiny-llama"), seed=99)  # different init
        t2 = Trainer(m2, dataset, cfg)
        step = t2.resume(path)
        assert step == 5
        t2.train(start_step=step)

        for key in ref_model.state_dict():
            np.testing.assert_allclose(
                m2.state_dict()[key], ref_model.state_dict()[key],
                atol=1e-9, err_msg=key)

    def test_resume_rejects_mismatched_config(self, dataset, tmp_path):
        cfg_a = TrainerConfig(optimizer="adam", lr=5e-3, batch_size=8,
                              max_steps=4, eval_every=10 ** 9)
        model = GPTModel(preset("tiny-llama"), seed=0)
        trainer = Trainer(model, dataset, cfg_a)
        path = trainer.save(tmp_path / "run", step=2)
        cfg_b = TrainerConfig(optimizer="adam", lr=1e-3, batch_size=8,
                              max_steps=4, eval_every=10 ** 9)
        other = Trainer(GPTModel(preset("tiny-llama"), seed=0), dataset,
                        cfg_b)
        with pytest.raises(ValueError):
            other.resume(path)

    def test_ckpt_suffix_added(self, dataset, tmp_path):
        model = GPTModel(preset("tiny-llama"), seed=0)
        trainer = Trainer(model, dataset, TrainerConfig(max_steps=1))
        path = trainer.save(tmp_path / "noext", step=0)
        assert path.suffix == ".ckpt"

"""Tests for the corpus pipeline: formulas, abstracts, sources, screening,
packing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (ELEMENTS, AbstractGenerator, DataSource, Formula,
                        FormulaGenerator, PackedDataset, ScreeningClassifier,
                        TABLE_I_SPECS, build_all_sources, corpus_token_table,
                        parse_formula, screen_sources)
from repro.tokenizers import BPETokenizer


class TestFormulas:
    def test_parse_simple(self):
        f = parse_formula("GaAs")
        assert f.composition == (("Ga", 1), ("As", 1))
        assert str(f) == "GaAs"

    def test_parse_with_counts(self):
        f = parse_formula("Al2O3")
        assert f.composition == (("Al", 2), ("O", 3))
        assert f.num_atoms == 5

    def test_parse_rejects_garbage(self):
        for bad in ["", "xy", "Ga-As", "123", "Qq2"]:
            with pytest.raises(ValueError):
                parse_formula(bad)

    def test_roundtrip_str(self):
        gen = FormulaGenerator(seed=3)
        for f in gen.sample_many(50):
            assert parse_formula(str(f)).composition == f.composition

    def test_fraction_sums_to_one(self):
        f = parse_formula("LiFePO4")
        total = sum(f.fraction(el) for el in f.elements)
        assert total == pytest.approx(1.0)

    def test_electronegativity_properties(self):
        f = parse_formula("NaCl")
        assert 0.9 < f.mean_electronegativity < 3.2
        assert f.electronegativity_spread == pytest.approx(3.16 - 0.93)

    def test_generator_deterministic(self):
        a = FormulaGenerator(seed=5).sample_many(10)
        b = FormulaGenerator(seed=5).sample_many(10)
        assert [str(x) for x in a] == [str(x) for x in b]

    def test_generator_produces_valid_elements(self):
        for f in FormulaGenerator(seed=9).sample_many(100):
            assert all(el in ELEMENTS for el in f.elements)

    def test_generator_no_duplicate_elements(self):
        for f in FormulaGenerator(seed=11).sample_many(100):
            assert len(set(f.elements)) == len(f.elements)


class TestAbstracts:
    def test_materials_abstract_mentions_formula(self):
        gen = AbstractGenerator(seed=0)
        a = gen.materials_abstract()
        assert a.is_materials
        assert a.formulas and a.formulas[0] in a.text

    def test_other_abstract_is_not_materials(self):
        a = AbstractGenerator(seed=0).other_abstract()
        assert not a.is_materials
        assert a.formulas == ()

    def test_sample_fraction(self):
        docs = AbstractGenerator(seed=1).sample(400, materials_fraction=0.7)
        frac = sum(d.is_materials for d in docs) / len(docs)
        assert abs(frac - 0.7) < 0.08

    def test_sample_fraction_bounds(self):
        with pytest.raises(ValueError):
            AbstractGenerator().sample(10, materials_fraction=1.5)

    def test_deterministic(self):
        a = AbstractGenerator(seed=2).sample(5)
        b = AbstractGenerator(seed=2).sample(5)
        assert [d.text for d in a] == [d.text for d in b]

    def test_abstracts_are_varied(self):
        docs = AbstractGenerator(seed=3).sample(50, materials_fraction=1.0)
        assert len({d.text for d in docs}) > 45


class TestSources:
    def test_table_i_scaled_counts(self):
        sources = build_all_sources(seed=0)
        by_name = {s.name: s for s in sources}
        assert len(by_name["MAG"]) == 1500
        assert len(by_name["SCOPUS"]) == 600
        assert len(by_name["Aminer"]) == 300
        # CORE: 250 abstracts + 30 full-texts.
        assert len(by_name["CORE"]) == 280

    def test_scopus_prefiltered_all_materials(self):
        scopus = [s for s in build_all_sources(seed=0) if s.name == "SCOPUS"][0]
        assert all(d.is_materials for d in scopus.documents)

    def test_aggregated_sources_are_mixed(self):
        mag = [s for s in build_all_sources(seed=0) if s.name == "MAG"][0]
        frac = sum(d.is_materials for d in mag.documents) / len(mag)
        assert 0.1 < frac < 0.5

    def test_documents_carry_source_name(self):
        for src in build_all_sources(seed=0):
            assert all(d.source == src.name for d in src.documents)

    def test_core_token_share_dominates(self):
        """Table I shape: CORE contributes the majority of tokens."""
        sources = build_all_sources(seed=0)
        rows = {r["source"]: r["tokens"] for r in corpus_token_table(sources)}
        assert rows["CORE"] > 0.4 * rows["All"]
        assert rows["CORE"] > rows["MAG"]

    def test_token_table_totals(self):
        sources = build_all_sources(seed=0)
        rows = corpus_token_table(sources)
        total = [r for r in rows if r["source"] == "All"][0]
        assert total["abstracts"] == sum(
            r["abstracts"] for r in rows if r["source"] != "All")
        assert total["abstracts"] == 2650  # 26.5M x 1e-4

    def test_specs_match_paper(self):
        by_name = {s.name: s for s in TABLE_I_SPECS}
        assert by_name["CORE"].paper_tokens == 8.8e9
        assert by_name["MAG"].paper_abstracts == 15e6
        assert sum(s.paper_tokens for s in TABLE_I_SPECS) == 15e9


class TestScreening:
    @pytest.fixture(scope="class")
    def classifier(self):
        gen = AbstractGenerator(seed=100)
        docs = gen.sample(300, materials_fraction=0.5)
        labels = np.array([d.is_materials for d in docs], dtype=float)
        return ScreeningClassifier().fit([d.text for d in docs], labels)

    def test_high_holdout_accuracy(self, classifier):
        docs = AbstractGenerator(seed=200).sample(200, materials_fraction=0.5)
        acc = classifier.accuracy([d.text for d in docs],
                                  np.array([d.is_materials for d in docs]))
        assert acc > 0.95

    def test_screen_sources_keeps_scopus_whole(self, classifier):
        sources = build_all_sources(seed=0)
        kept, reports = screen_sources(sources, classifier)
        scopus = [r for r in reports if r.source == "SCOPUS"][0]
        assert scopus.kept == scopus.total

    def test_screen_sources_high_precision(self, classifier):
        sources = build_all_sources(seed=0)
        _, reports = screen_sources(sources, classifier)
        for r in reports:
            assert r.precision > 0.9, r.source

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            ScreeningClassifier().predict(["x"])

    def test_bad_labels_rejected(self):
        with pytest.raises(ValueError):
            ScreeningClassifier().fit(["a", "b"], np.array([0.0, 2.0]))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ScreeningClassifier().fit(["a"], np.array([0.0, 1.0]))


class TestPackedDataset:
    @pytest.fixture(scope="class")
    def tokenizer(self):
        texts = [d.text for d in AbstractGenerator(seed=0).sample(60)]
        return BPETokenizer().train(texts, 400)

    def test_packing_shapes(self, tokenizer):
        texts = [d.text for d in AbstractGenerator(seed=1).sample(40)]
        ds = PackedDataset.from_texts(texts, tokenizer, seq_len=32)
        batch = next(ds.batches(batch_size=2))
        assert batch.inputs.shape == (2, 32)
        assert batch.targets.shape == (2, 32)

    def test_targets_are_shifted_inputs(self, tokenizer):
        texts = [d.text for d in AbstractGenerator(seed=2).sample(40)]
        ds = PackedDataset.from_texts(texts, tokenizer, seq_len=16,
                                      val_fraction=0.0)
        batch = next(ds.batches(batch_size=1, shuffle=False))
        np.testing.assert_array_equal(batch.inputs[0, 1:], batch.targets[0, :-1])

    def test_val_split(self, tokenizer):
        texts = [d.text for d in AbstractGenerator(seed=3).sample(60)]
        ds = PackedDataset.from_texts(texts, tokenizer, seq_len=16,
                                      val_fraction=0.2)
        assert ds.num_val > 0
        assert ds.num_val / (ds.num_val + ds.num_train) == pytest.approx(0.2, abs=0.05)

    def test_too_small_corpus_rejected(self):
        with pytest.raises(ValueError):
            PackedDataset([np.arange(5)], seq_len=32)

    def test_bad_split_name(self, tokenizer):
        texts = [d.text for d in AbstractGenerator(seed=4).sample(40)]
        ds = PackedDataset.from_texts(texts, tokenizer, seq_len=16)
        with pytest.raises(ValueError):
            list(ds.batches(1, split="test"))

    def test_epoch_covers_all_train_samples(self, tokenizer):
        texts = [d.text for d in AbstractGenerator(seed=5).sample(40)]
        ds = PackedDataset.from_texts(texts, tokenizer, seq_len=16,
                                      val_fraction=0.0)
        seen = sum(b.inputs.shape[0] for b in ds.batches(2))
        assert seen == (ds.num_train // 2) * 2

    def test_sample_batch_deterministic(self, tokenizer):
        texts = [d.text for d in AbstractGenerator(seed=6).sample(40)]
        ds = PackedDataset.from_texts(texts, tokenizer, seq_len=16)
        a = ds.sample_batch(2, seed=7)
        b = ds.sample_batch(2, seed=7)
        np.testing.assert_array_equal(a.inputs, b.inputs)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(2, 40))
    def test_property_any_seq_len_packs(self, seq_len):
        docs = [np.arange(100, dtype=np.int64)] * 3
        ds = PackedDataset(docs, seq_len=seq_len, val_fraction=0.0)
        assert ds.num_train == 300 // (seq_len + 1)

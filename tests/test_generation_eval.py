"""Tests for the generation-based evaluation protocol."""

import numpy as np
import pytest

from repro.data import AbstractGenerator, PackedDataset
from repro.evalharness import (CompletionItem, build_completion_task,
                               evaluate_generation, token_f1)
from repro.models import GPTModel, preset
from repro.tokenizers import BPETokenizer
from repro.training import Trainer, TrainerConfig


@pytest.fixture(scope="module")
def setup():
    texts = [d.text for d in AbstractGenerator(seed=0).sample(200)]
    tok = BPETokenizer().train(texts, 512)
    ds = PackedDataset.from_texts(texts, tok, seq_len=48)
    model = GPTModel(preset("tiny-llama"), seed=0)
    Trainer(model, ds, TrainerConfig(optimizer="adam", lr=5e-3, batch_size=8,
                                     max_steps=100,
                                     eval_every=10 ** 9)).train()
    return model, tok


class TestTokenF1:
    def test_exact_match(self):
        assert token_f1("band gap", "band gap") == 1.0

    def test_case_and_whitespace_normalized(self):
        assert token_f1("  Band   GAP ", "band gap") == 1.0

    def test_no_overlap(self):
        assert token_f1("alpha beta", "gamma delta") == 0.0

    def test_partial_overlap(self):
        # pred {a, b}, ref {a, c}: precision 1/2, recall 1/2 -> F1 1/2.
        assert token_f1("a b", "a c") == pytest.approx(0.5)

    def test_empty_cases(self):
        assert token_f1("", "") == 1.0
        assert token_f1("", "word") == 0.0


class TestCompletionTask:
    def test_deterministic(self):
        a = build_completion_task(10, seed=4)
        b = build_completion_task(10, seed=4)
        assert [i.prompt for i in a] == [i.prompt for i in b]

    def test_item_validation(self):
        with pytest.raises(ValueError):
            CompletionItem(prompt="", answer="x")
        with pytest.raises(ValueError):
            CompletionItem(prompt="x", answer="")

    def test_prompts_contain_domain_text(self):
        items = build_completion_task(10, seed=0)
        joined = " ".join(i.prompt for i in items)
        assert any(word in joined for word in
                   ("diffraction", "electronic", "band", "Raman"))


class TestEvaluateGeneration:
    def test_trained_model_completes_domain_prompts(self, setup):
        """The trained/fresh contrast: corpus templates are learnable."""
        model, tok = setup
        items = build_completion_task(15, seed=0)
        trained = evaluate_generation(model, tok, items)
        fresh = evaluate_generation(GPTModel(preset("tiny-llama"), seed=0),
                                    tok, items)
        assert trained.prefix_match > 0.6
        assert trained.prefix_match > fresh.prefix_match + 0.4
        assert trained.mean_f1 > fresh.mean_f1

    def test_cached_and_uncached_identical(self, setup):
        model, tok = setup
        items = build_completion_task(5, seed=1)
        a = evaluate_generation(model, tok, items, use_cache=True)
        b = evaluate_generation(model, tok, items, use_cache=False)
        assert a == b

    def test_empty_items_rejected(self, setup):
        model, tok = setup
        with pytest.raises(ValueError):
            evaluate_generation(model, tok, [])

    def test_result_fields(self, setup):
        model, tok = setup
        r = evaluate_generation(model, tok, build_completion_task(4, seed=2))
        assert r.n == 4
        assert 0.0 <= r.prefix_match <= 1.0
        assert 0.0 <= r.mean_f1 <= 1.0

"""Smoke tests for the example scripts.

Examples are documentation that must not rot: each module must import
cleanly (no syntax errors, no broken imports) and expose a ``main``.
Full runs happen manually / in the benchmark docs, not here — several
examples train models for minutes.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def load(name: str):
    spec = importlib.util.spec_from_file_location(
        f"example_{name[:-3]}", EXAMPLES_DIR / name)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_all_examples_present(self):
        assert {"quickstart.py", "architecture_search.py",
                "scaling_study.py", "bandgap_prediction.py",
                "full_study.py", "layout_advisor.py",
                "render_figures.py", "training_features.py"} <= \
            set(EXAMPLES)

    @pytest.mark.parametrize("name", EXAMPLES)
    def test_imports_and_exposes_main(self, name):
        module = load(name)
        assert callable(getattr(module, "main", None)), name

    @pytest.mark.parametrize("name", EXAMPLES)
    def test_has_module_docstring(self, name):
        module = load(name)
        assert module.__doc__ and len(module.__doc__) > 40, name

    def test_layout_advisor_runs(self, capsys):
        """The cheapest example actually executes end to end."""
        load("layout_advisor.py").main()
        out = capsys.readouterr().out
        assert "recommended: TP=2" in out
        assert "GQA (2 kv heads)" in out

    def test_architecture_search_runs(self, capsys):
        load("architecture_search.py").main()
        out = capsys.readouterr().out
        assert "best: 24 layers x 2304 hidden" in out

"""Tests for the multi-node serving cluster simulator: replica
layouts, load-balancing policies, backpressure, lifecycle traces, and
the ClusterResult API."""

import json

import pytest

from repro.frontier.hardware import GCDSpec, NodeSpec
from repro.models import preset
from repro.serving import (LB_POLICIES, ClusterConfig, ClusterResult,
                           ClusterSimulator, ReplicaLayout, ServingConfig,
                           ServingResultBase, WorkloadConfig, format_cluster,
                           synthesize_workload)


@pytest.fixture(scope="module")
def config():
    return preset("llama-1.7b-hf-52k")


def make_workload(config, n=40, rate=800.0, seed=0, skew=0.0, **kw):
    """Fresh requests every call: the scheduler mutates Request objects,
    so a workload must never be re-run through a second simulator."""
    wl = WorkloadConfig(num_requests=n, arrival_rate=rate, seed=seed,
                        prompt_len_range=(64, 256),
                        output_len_range=(16, 64), prompt_skew=skew,
                        heavy_multiplier=8, **kw)
    return synthesize_workload(wl, config)


def run_cluster(config, policy="round-robin", nodes=2, n=40, seed=0,
                skew=0.0, rate=800.0, **cluster_kw):
    cfg = ClusterConfig(num_nodes=nodes, policy=policy, **cluster_kw)
    sim = ClusterSimulator(config, cfg)
    return sim.run(make_workload(config, n=n, seed=seed, skew=skew,
                                 rate=rate))


class TestReplicaLayout:
    def test_label_roundtrip(self):
        for label in ("8xTP1", "1xTP8", "4xTP2"):
            assert ReplicaLayout.from_label(label).label == label

    def test_parse_is_case_insensitive(self):
        layout = ReplicaLayout.from_label("8xtp1")
        assert layout.replicas_per_node == 8 and layout.tp == 1

    def test_bad_labels_rejected(self):
        for bad in ("8x1", "TP8", "8xTPx", "", "axTPb"):
            with pytest.raises(ValueError):
                ReplicaLayout.from_label(bad)

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            ReplicaLayout(replicas_per_node=0)
        with pytest.raises(ValueError):
            ReplicaLayout(tp=0)

    def test_validate_checks_node_capacity(self, config):
        layout = ReplicaLayout(replicas_per_node=8, tp=2)  # 16 GCDs
        with pytest.raises(ValueError, match="GCDs"):
            layout.validate(config, NodeSpec(), GCDSpec())

    def test_validate_checks_hbm(self, config):
        tiny_gcd = GCDSpec(hbm_gb=1.0)
        with pytest.raises(ValueError, match="HBM"):
            ReplicaLayout().validate(config, NodeSpec(), tiny_gcd)

    def test_cluster_config_validates(self):
        with pytest.raises(ValueError):
            ClusterConfig(policy="random")
        with pytest.raises(ValueError):
            ClusterConfig(num_nodes=0)
        with pytest.raises(ValueError):
            ClusterConfig(max_outstanding_per_replica=0)


class TestClusterRun:
    def test_all_requests_complete_every_policy(self, config):
        for policy in LB_POLICIES:
            result = run_cluster(config, policy=policy)
            assert result.metrics.num_requests == 40
            ids = [r.request_id for r in result.records]
            assert ids == sorted(ids) == list(range(40))
            assert set(result.assignments) == set(range(40))

    def test_deterministic(self, config):
        a = run_cluster(config, policy="least-outstanding", skew=0.2)
        b = run_cluster(config, policy="least-outstanding", skew=0.2)
        assert a.records == b.records
        assert a.metrics == b.metrics
        assert a.assignments == b.assignments

    def test_round_robin_spreads_evenly(self, config):
        # 32 requests over 2 nodes x 8 replicas: exactly 2 per replica.
        result = run_cluster(config, policy="round-robin", nodes=2, n=32)
        assert result.per_node_requests() == {0: 16, 1: 16}

    def test_load_aware_policies_use_all_nodes(self, config):
        """Regression: a lowest-index tie-break used to funnel ties onto
        the first replicas and leave later nodes idle."""
        for policy in ("least-outstanding", "jskq"):
            result = run_cluster(config, policy=policy, nodes=4, n=80)
            assert set(result.per_node_requests()) == {0, 1, 2, 3}

    def test_tp8_layout_completes(self, config):
        result = run_cluster(
            config, nodes=2, layout=ReplicaLayout(replicas_per_node=1,
                                                  tp=8))
        assert result.metrics.num_requests == 40
        assert result.layout == "1xTP8"
        # One replica per node: every assignment's replica index is 0.
        assert {a[1] for a in result.assignments.values()} == {0}

    def test_tp8_decode_slower_per_token_at_light_load(self, config):
        """TP=8 pays the allreduce tax every decode step; with ample
        per-replica HBM either way, 8xTP1 wins on aggregate tok/s."""
        tp1 = run_cluster(config, nodes=1, n=64, rate=4000.0)
        tp8 = run_cluster(config, nodes=1, n=64, rate=4000.0,
                          layout=ReplicaLayout(replicas_per_node=1, tp=8))
        assert tp1.metrics.tokens_per_s > tp8.metrics.tokens_per_s

    def test_backpressure_queues_then_completes(self, config):
        result = run_cluster(config, nodes=1, rate=100000.0,
                             max_outstanding_per_replica=1)
        assert result.queued_requests > 0
        assert result.metrics.num_requests == 40

    def test_tight_pool_forces_cluster_preemption(self, config):
        result = run_cluster(
            config, nodes=1, rate=100000.0, n=24,
            layout=ReplicaLayout(replicas_per_node=1, tp=1),
            serving=ServingConfig(num_blocks=30, block_size=16,
                                  max_batch_size=8))
        assert result.metrics.preemptions > 0
        assert result.metrics.num_requests == 24
        stages = {e.category
                  for lanes in result.lanes.values()
                  for events in lanes.values() for e in events}
        assert "preempt" in stages

    def test_least_outstanding_beats_round_robin_tail(self, config):
        """The acceptance bar: on a skewed prompt-length workload at the
        cluster-bench defaults, least-outstanding's p99 TTFT is no worse
        than blind round-robin."""
        rr = run_cluster(config, policy="round-robin", nodes=4, n=200,
                         skew=0.15, rate=800.0)
        lo = run_cluster(config, policy="least-outstanding", nodes=4,
                         n=200, skew=0.15, rate=800.0)
        assert lo.percentiles("ttft")[99.0] <= rr.percentiles("ttft")[99.0]

    def test_format_cluster_table(self, config):
        results = [run_cluster(config, policy=p, n=16)
                   for p in LB_POLICIES]
        table = format_cluster(results)
        for p in LB_POLICIES:
            assert p in table
        assert "p99 TTFT" in table


class TestClusterResult:
    def test_shares_result_base(self, config):
        result = run_cluster(config, n=16)
        assert isinstance(result, ClusterResult)
        assert isinstance(result, ServingResultBase)
        p = result.percentiles("ttft", qs=(50.0, 99.0))
        assert p[50.0] <= p[99.0]
        with pytest.raises(ValueError):
            result.percentiles("nope")

    def test_to_dict_and_save_json(self, config, tmp_path):
        result = run_cluster(config, n=16)
        data = result.to_dict()
        assert data["policy"] == "round-robin"
        assert data["num_nodes"] == 2
        assert len(data["assignments"]) == 16
        path = result.save_json(tmp_path / "cluster")
        assert json.loads(path.read_text())["layout"] == "8xTP1"


class TestLifecycleTrace:
    def test_every_request_emits_full_lifecycle(self, config):
        result = run_cluster(config, n=24)
        per_req: dict[int, set] = {}
        for lanes in result.lanes.values():
            for events in lanes.values():
                for e in events:
                    rid, stage = e.name.split("/")
                    per_req.setdefault(int(rid[3:]), set()).add(stage)
        need = {"arrive", "route", "admit", "prefill", "decode", "finish"}
        assert set(per_req) == set(range(24))
        for stages in per_req.values():
            assert need <= stages

    def test_chrome_export_one_track_per_node(self, config, tmp_path):
        result = run_cluster(config, nodes=3, n=24)
        path = result.save_trace(tmp_path / "trace")
        doc = json.loads(path.read_text())
        procs = [e["args"]["name"] for e in doc["traceEvents"]
                 if e.get("name") == "process_name"]
        assert sorted(procs) == ["cluster", "node0", "node1", "node2"]
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert {"M", "X", "i"} <= phases  # spans and instant markers

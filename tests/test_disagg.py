"""Tests for disaggregated prefill/decode serving: role-aware layouts,
priced KV-cache transfer, handoff routing, colocated token parity, the
deprecation shims of the role-aware cluster API, and transfer re-queue
under replica failover."""

import json
import math
import warnings

import pytest

from repro.faults import FaultConfig, RetryPolicy
from repro.frontier.hardware import NodeSpec
from repro.models import preset
from repro.parallel.collectives import CollectiveModel
from repro.serving import (HANDOFF_POLICIES, ClusterConfig, ClusterSimulator,
                           FailoverConfig, KVTransferConfig, KVTransferModel,
                           ReplicaLayout, RoutingConfig, ServingConfig,
                           SessionWorkloadConfig, TransferRecord,
                           WorkloadConfig, format_cluster, kv_bytes_per_token,
                           synthesize_sessions, synthesize_workload)


@pytest.fixture(scope="module")
def config():
    return preset("llama-1.7b-hf-52k")


def make_workload(config, n=40, rate=800.0, seed=0, skew=0.15):
    wl = WorkloadConfig(num_requests=n, arrival_rate=rate, seed=seed,
                        prompt_len_range=(64, 256),
                        output_len_range=(16, 64), prompt_skew=skew,
                        heavy_multiplier=8)
    return synthesize_workload(wl, config)


def run_disagg(config, layout="2p6dxTP1", nodes=2, n=40, seed=0,
               handoff="least-outstanding", granularity="layer",
               requests=None, **cluster_kw):
    cfg = ClusterConfig(
        num_nodes=nodes, layout=ReplicaLayout.from_label(layout),
        routing=RoutingConfig(handoff=handoff),
        transfer=KVTransferConfig(granularity=granularity), **cluster_kw)
    sim = ClusterSimulator(config, cfg)
    result = sim.run(requests if requests is not None
                     else make_workload(config, n=n, seed=seed))
    return sim, result


class TestRoleAwareLayout:
    def test_disagg_label_roundtrip(self):
        for label in ("2P6DxTP1", "4P4DxTP1", "1P1DxTP2"):
            layout = ReplicaLayout.from_label(label)
            assert layout.label == label
            assert layout.disaggregated

    def test_parse_is_case_insensitive(self):
        layout = ReplicaLayout.from_label("6p2dxtp1")
        assert layout.prefill_replicas == 6
        assert layout.decode_replicas == 2
        assert layout.replicas_per_node == 8

    def test_colocated_layout_unchanged(self):
        layout = ReplicaLayout.from_label("8xTP1")
        assert not layout.disaggregated
        assert layout.prefill_replicas == 0
        assert layout.decode_replicas == 0
        assert layout.label == "8xTP1"

    def test_role_of(self):
        layout = ReplicaLayout(replicas_per_node=8, prefill_replicas=2)
        roles = [layout.role_of(r) for r in range(8)]
        assert roles == ["prefill"] * 2 + ["decode"] * 6
        assert ReplicaLayout(replicas_per_node=8).role_of(3) == "mixed"
        with pytest.raises(ValueError):
            layout.role_of(8)

    def test_needs_at_least_one_decode_replica(self):
        with pytest.raises(ValueError, match="decode"):
            ReplicaLayout(replicas_per_node=8, prefill_replicas=8)
        with pytest.raises(ValueError):
            ReplicaLayout(replicas_per_node=1, prefill_replicas=1)
        with pytest.raises(ValueError):
            ReplicaLayout(prefill_replicas=-1)

    def test_bad_disagg_labels_rejected(self):
        for bad in ("2P0DxTP1", "0P8DxTP1", "2PxTP1", "PDxTP1"):
            with pytest.raises(ValueError):
                ReplicaLayout.from_label(bad)

    def test_replica_roles_assigned(self, config):
        sim, _ = run_disagg(config, layout="2p6dxTP1", n=8)
        roles = [r.role for r in sim.replicas]
        per_node = ["prefill"] * 2 + ["decode"] * 6
        assert roles == per_node * 2


class TestDeprecationShims:
    def test_policy_kwarg_warns_and_mirrors(self):
        with pytest.warns(DeprecationWarning, match="policy"):
            cfg = ClusterConfig(policy="jskq")
        assert cfg.routing.policy == "jskq"
        assert cfg.policy == "jskq"

    def test_max_outstanding_kwarg_warns_and_mirrors(self):
        with pytest.warns(DeprecationWarning, match="max_outstanding"):
            cfg = ClusterConfig(max_outstanding_per_replica=4)
        assert cfg.routing.max_outstanding_per_replica == 4
        assert cfg.max_outstanding_per_replica == 4

    def test_new_api_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            cfg = ClusterConfig(routing=RoutingConfig(
                policy="jskq", max_outstanding_per_replica=4))
        # The mirror fields expose the effective values either way.
        assert cfg.policy == "jskq"
        assert cfg.max_outstanding_per_replica == 4

    def test_validation_still_applies_through_shim(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError):
                ClusterConfig(policy="random")

    def test_routing_config_validates(self):
        with pytest.raises(ValueError):
            RoutingConfig(policy="random")
        with pytest.raises(ValueError):
            RoutingConfig(handoff="random")
        with pytest.raises(ValueError):
            RoutingConfig(max_outstanding_per_replica=0)
        with pytest.raises(ValueError):
            KVTransferConfig(granularity="bytes")


class TestTransferPricing:
    """Golden-value checks against CollectiveModel point-to-point cost."""

    def test_layer_granularity_matches_p2p(self, config):
        model = KVTransferModel(config, KVTransferConfig("layer"))
        collectives = CollectiveModel(NodeSpec())
        tokens = 384
        total = tokens * kv_bytes_per_token(config, 2)
        layers = config.num_layers
        expected = layers * collectives.p2p(total // layers,
                                            "system").seconds
        assert model.transfer_time(tokens) == pytest.approx(
            expected, rel=1e-12)

    def test_cache_granularity_matches_p2p(self, config):
        model = KVTransferModel(config, KVTransferConfig("cache"))
        collectives = CollectiveModel(NodeSpec())
        tokens = 384
        total = tokens * kv_bytes_per_token(config, 2)
        expected = collectives.p2p(total, "system").seconds
        assert model.transfer_time(tokens) == pytest.approx(
            expected, rel=1e-12)

    def test_same_node_uses_node_span(self, config):
        model = KVTransferModel(config, KVTransferConfig("cache"))
        collectives = CollectiveModel(NodeSpec())
        total = 256 * kv_bytes_per_token(config, 2)
        expected = collectives.p2p(total, "node").seconds
        assert model.transfer_time(256, same_node=True) == pytest.approx(
            expected, rel=1e-12)
        # Infinity Fabric beats the per-GCD Slingshot share.
        assert model.transfer_time(256, same_node=True) \
            < model.transfer_time(256)

    def test_layer_split_is_exact_and_costs_more_latency(self, config):
        model = KVTransferModel(config, KVTransferConfig("layer"))
        assert model.token_bytes % config.num_layers == 0
        whole = KVTransferModel(config, KVTransferConfig("cache"))
        # Same bytes, more message latencies.
        assert model.transfer_time(512) > whole.transfer_time(512)

    def test_rejects_empty_transfer(self, config):
        with pytest.raises(ValueError):
            KVTransferModel(config).transfer_time(0)


class TestDisaggRun:
    def test_all_requests_complete_with_transfers(self, config):
        _, result = run_disagg(config, n=40)
        assert result.metrics.num_requests == 40
        assert result.transfers == 40
        assert result.transfer_seconds > 0
        assert result.transfer_requeues == 0
        assert len(result.transfer_records) == 40
        for rec in result.transfer_records:
            assert isinstance(rec, TransferRecord)
            assert rec.duration_s > 0
            assert rec.tokens >= 1
            assert rec.bytes == rec.tokens * kv_bytes_per_token(config, 2)
            # src is a prefill replica, dst a decode replica.
            assert rec.src[1] < 2 <= rec.dst[1]

    def test_token_parity_with_colocated(self, config):
        reqs_colo = make_workload(config, n=40)
        reqs_disagg = make_workload(config, n=40)
        ClusterSimulator(config, ClusterConfig(
            num_nodes=2, layout=ReplicaLayout.from_label("8xTP1"))
        ).run(reqs_colo)
        run_disagg(config, n=40, requests=reqs_disagg)
        for colo, disagg in zip(reqs_colo, reqs_disagg):
            assert colo.output, "timing-level decode emitted no tokens"
            assert colo.output == disagg.output

    def test_deterministic(self, config):
        _, a = run_disagg(config, n=40)
        _, b = run_disagg(config, n=40)
        assert [r.__dict__ for r in a.records] == \
            [r.__dict__ for r in b.records]
        assert a.transfer_records == b.transfer_records

    def test_transfer_lane_in_trace(self, config, tmp_path):
        _, result = run_disagg(config, n=16)
        lane = result.lanes["cluster"]["kv-transfer"]
        assert len(lane) == 16
        assert all(e.category == "kv-transfer" for e in lane)
        assert all(e.duration_s > 0 for e in lane)
        doc = json.loads(
            result.save_trace(tmp_path / "disagg.json").read_text())
        cats = {e.get("cat") for e in doc["traceEvents"]}
        assert {"kv-transfer", "handoff", "kv-import"} <= cats

    def test_colocated_has_no_transfer_machinery(self, config):
        sim = ClusterSimulator(config, ClusterConfig(
            num_nodes=2, layout=ReplicaLayout.from_label("8xTP1")))
        result = sim.run(make_workload(config, n=16))
        assert result.transfers == 0
        assert result.transfer_records == []
        assert "kv-transfer" not in result.lanes["cluster"]

    def test_decode_replicas_never_preempt(self, config):
        sim, result = run_disagg(config, n=40)
        assert result.metrics.num_requests == 40
        for replica in sim.replicas:
            if replica.role == "decode":
                assert replica.scheduler.total_preemptions == 0

    def test_cache_granularity_run_is_cheaper_on_wire(self, config):
        _, layer = run_disagg(config, n=24, granularity="layer")
        _, cache = run_disagg(config, n=24, granularity="cache")
        assert layer.transfer_seconds > cache.transfer_seconds
        # Same tokens either way — pricing only changes the clock.
        for a, b in zip(layer.transfer_records, cache.transfer_records):
            assert a.tokens == b.tokens and a.bytes == b.bytes

    def test_to_dict_round_trips_transfers(self, config):
        _, result = run_disagg(config, n=8)
        data = json.loads(json.dumps(result.to_dict()))
        assert data["transfers"] == 8
        assert data["transfer_requeues"] == 0
        assert len(data["transfer_records"]) == 8
        rec = data["transfer_records"][0]
        assert isinstance(rec["src"], list) and isinstance(rec["dst"], list)

    def test_format_cluster_adds_transfer_columns(self, config):
        _, disagg = run_disagg(config, n=8)
        sim = ClusterSimulator(config, ClusterConfig(
            num_nodes=2, layout=ReplicaLayout.from_label("8xTP1")))
        colo = sim.run(make_workload(config, n=8))
        table = format_cluster([colo, disagg])
        assert "xfers" in table and "requeued" in table
        assert "xfers" not in format_cluster([colo])


class TestHandoffPolicies:
    def test_all_policies_complete(self, config):
        for handoff in HANDOFF_POLICIES:
            _, result = run_disagg(config, n=32, handoff=handoff)
            assert result.metrics.num_requests == 32
            assert result.transfers == 32

    def test_round_robin_spreads_decode_load(self, config):
        _, result = run_disagg(config, n=32, handoff="round-robin",
                               nodes=1)
        dsts = [rec.dst for rec in result.transfer_records]
        assert len(set(dsts)) == 6  # every decode replica used

    def test_session_affinity_is_sticky(self, config):
        swl = SessionWorkloadConfig(num_sessions=6, arrival_rate=50.0,
                                    seed=0)
        requests = synthesize_sessions(swl, config)
        sessions = {req.request_id: req.session_id for req in requests}
        _, result = run_disagg(config, layout="2p6dxTP1", nodes=1,
                               handoff="session-affinity",
                               requests=requests)
        by_session: dict[int, set] = {}
        for rid, dst in result.assignments.items():
            by_session.setdefault(sessions[rid], set()).add(dst)
        for session_id, dsts in by_session.items():
            assert len(dsts) == 1, \
                f"session {session_id} split across {dsts}"


class TestCacheAwareRouting:
    def test_cache_aware_completes_and_looks_up(self, config):
        swl = SessionWorkloadConfig(num_sessions=8, arrival_rate=50.0,
                                    seed=0)
        serving = ServingConfig(prefix_cache=True, prefix_cache_blocks=64)
        results = {}
        for policy in ("round-robin", "cache-aware"):
            sim = ClusterSimulator(config, ClusterConfig(
                num_nodes=1, layout=ReplicaLayout.from_label("4xTP1"),
                routing=RoutingConfig(policy=policy), serving=serving))
            results[policy] = sim.run(synthesize_sessions(swl, config))
        for res in results.values():
            assert res.metrics.num_requests == len(
                synthesize_sessions(swl, config))
            assert res.metrics.cache_lookups > 0
        # Routing toward the replica already holding the prefix cannot
        # hit less than blind rotation on the same workload.
        assert results["cache-aware"].metrics.cache_hit_rate >= \
            results["round-robin"].metrics.cache_hit_rate

    def test_cache_aware_without_cache_falls_back(self, config):
        sim = ClusterSimulator(config, ClusterConfig(
            num_nodes=1, layout=ReplicaLayout.from_label("4xTP1"),
            routing=RoutingConfig(policy="cache-aware")))
        result = sim.run(make_workload(config, n=16))
        assert result.metrics.num_requests == 16


class TestTransferFailover:
    """In-flight transfers toward a dead decode replica are re-queued."""

    @staticmethod
    def run_faulted(config, fault_seed, mtbf=0.0002):
        wl = WorkloadConfig(num_requests=64, arrival_rate=30.0,
                            prompt_len_range=(128, 512),
                            output_len_range=(128, 256), seed=3)
        cfg = ClusterConfig(
            num_nodes=1, layout=ReplicaLayout.from_label("6p2dxTP1"),
            routing=RoutingConfig(policy="least-outstanding"),
            serving=ServingConfig(max_batch_tokens=8192),
            faults=FaultConfig(mtbf_hours=mtbf, seed=fault_seed),
            failover=FailoverConfig(
                detection_s=0.01, recovery_s=0.5,
                retry=RetryPolicy(max_retries=3, seed=5),
                slo_ttft_s=1.0))
        sim = ClusterSimulator(config, cfg)
        return sim.run(synthesize_workload(wl, config))

    def test_in_flight_transfer_requeued_not_dropped(self, config):
        # fault_seed=28 kills a decode replica with exactly one transfer
        # on the wire; the request retries from prefill and completes —
        # nothing is silently dropped.
        result = self.run_faulted(config, fault_seed=28)
        assert result.transfer_requeues == 1
        assert len(result.records) + len(result.failed_records) == 64
        assert len(result.failed_records) == 0
        assert result.retries_total > 0

    def test_heavy_faulting_preserves_accounting(self, config):
        result = self.run_faulted(config, fault_seed=8)
        assert result.transfer_requeues > 1
        assert len(result.records) + len(result.failed_records) == 64
        ids = {r.request_id for r in result.records} \
            | {f.request_id for f in result.failed_records}
        assert ids == set(range(64))

    def test_mtbf_inf_matches_fault_free(self, config):
        faulted = self.run_faulted(config, fault_seed=28, mtbf=math.inf)
        wl = WorkloadConfig(num_requests=64, arrival_rate=30.0,
                            prompt_len_range=(128, 512),
                            output_len_range=(128, 256), seed=3)
        sim = ClusterSimulator(config, ClusterConfig(
            num_nodes=1, layout=ReplicaLayout.from_label("6p2dxTP1"),
            routing=RoutingConfig(policy="least-outstanding"),
            serving=ServingConfig(max_batch_tokens=8192)))
        base = sim.run(synthesize_workload(wl, config))
        assert [r.__dict__ for r in faulted.records] == \
            [r.__dict__ for r in base.records]
        assert faulted.transfer_records == base.transfer_records
        assert faulted.transfer_requeues == 0

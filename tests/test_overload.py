"""Tests for the overload-protection layer: per-request deadlines and
timeout cancellation, SLO-aware admission control (load shedding),
graceful degradation, the per-replica circuit breaker, queue-depth
observability — and the bit-exactness contract that ``OverloadConfig()``
defaults are a no-op for both the engine and the cluster."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import CircuitBreaker, FaultConfig, RetryPolicy
from repro.models import GPTModel, preset
from repro.serving import (SHED_POLICIES, ClusterConfig, ClusterSimulator,
                           FailoverConfig, OverloadConfig, ReplicaLayout,
                           RoutingConfig, ServingConfig, ServingEngine,
                           WorkloadConfig, slo_availability,
                           synthesize_workload)
from repro.serving.metrics import RequestRecord
from repro.serving.results import TIMEOUT_STAGES

#: Overload knobs switched on but sized to never fire: runs under this
#: config must be bit-identical to runs under the defaults.
NEVER_FIRING = OverloadConfig(shed_policy="bounded-queue",
                              max_queue_depth=10**6,
                              degrade_queue_depth=10**6,
                              degrade_max_new_tokens=10**6)


@pytest.fixture(scope="module")
def model():
    return GPTModel(preset("tiny-llama"), seed=0)


#: Timing-level cluster preset (no weights are instantiated); a module
#: global rather than a fixture so the hypothesis test can reach it.
CLUSTER_CFG = preset("llama-1.7b-hf-32k")


def engine_workload(model, n=24, rate=2000.0, seed=0, **kw):
    cfg = WorkloadConfig(num_requests=n, arrival_rate=rate, seed=seed, **kw)
    return synthesize_workload(cfg, model.config)


def run_engine(model, requests, overload=None, **serving_kw):
    cfg = ServingConfig(overload=overload or OverloadConfig(),
                        **serving_kw)
    engine = ServingEngine(model, cfg)
    return engine, engine.run(requests)


def run_cluster(overload=None, *, n=48, rate=40.0, deadline=None,
                seed=3, fault_seed=11, mtbf=None, policy="round-robin",
                max_outstanding=32, batch_fraction=0.0, cache=False):
    wl = WorkloadConfig(num_requests=n, arrival_rate=rate,
                        prompt_len_range=(128, 512),
                        output_len_range=(128, 256),
                        deadline_s=deadline,
                        batch_fraction=batch_fraction, seed=seed)
    faults = None if mtbf is None else \
        FaultConfig(mtbf_hours=mtbf, seed=fault_seed)
    cfg = ClusterConfig(
        num_nodes=1, layout=ReplicaLayout.from_label("8xTP1"),
        routing=RoutingConfig(
            policy=policy, max_outstanding_per_replica=max_outstanding),
        serving=ServingConfig(
            max_batch_tokens=8192, prefix_cache=cache,
            overload=overload or OverloadConfig()),
        faults=faults,
        failover=FailoverConfig(
            detection_s=0.01, recovery_s=0.5,
            retry=RetryPolicy(max_retries=3, seed=5)))
    sim = ClusterSimulator(CLUSTER_CFG, cfg)
    return sim, sim.run(synthesize_workload(wl, CLUSTER_CFG))


def assert_no_leaks(pool, scheduler, prefix_cache=None):
    """Cancellation must retain zero pool blocks or cache leases."""
    assert not scheduler.waiting and not scheduler.running
    if prefix_cache is None:
        assert pool.blocks_used == 0
    else:
        # Whatever the pool still holds is cache-owned, and none of it
        # is leased to a (cancelled) request.
        assert prefix_cache.referenced_blocks == 0
        assert pool.blocks_used == prefix_cache.num_blocks


# ----------------------------------------------------------------------
# Config validation and the no-op contract
# ----------------------------------------------------------------------

class TestOverloadConfig:
    def test_defaults_are_inert(self):
        cfg = OverloadConfig()
        assert not cfg.shedding and not cfg.degrading and not cfg.active

    def test_feature_flags(self):
        assert OverloadConfig(shed_policy="bounded-queue",
                              max_queue_depth=4).shedding
        assert OverloadConfig(degrade_queue_depth=4,
                              degrade_max_new_tokens=2).degrading
        assert OverloadConfig(breaker=True).active

    def test_validation_names_the_field(self):
        with pytest.raises(ValueError, match="shed_policy"):
            OverloadConfig(shed_policy="edf")
        with pytest.raises(ValueError, match="max_queue_depth"):
            OverloadConfig(shed_policy="bounded-queue")
        with pytest.raises(ValueError, match="max_queue_depth"):
            OverloadConfig(shed_policy="priority", max_queue_depth=0)
        with pytest.raises(ValueError, match="estimate_margin"):
            OverloadConfig(estimate_margin=0.0)
        with pytest.raises(ValueError, match="degrade_queue_depth"):
            OverloadConfig(degrade_queue_depth=0)
        with pytest.raises(ValueError, match="breaker_cooldown_s"):
            OverloadConfig(breaker_cooldown_s=0.0)
        with pytest.raises(ValueError, match="breaker_probes"):
            OverloadConfig(breaker_probes=0)

    def test_policy_catalog(self):
        assert SHED_POLICIES == ("none", "bounded-queue",
                                 "deadline-estimate", "priority")


class TestEngineParity:
    @pytest.mark.parametrize("seed", [0, 1])
    @pytest.mark.parametrize("policy", ["fcfs", "spf"])
    def test_armed_but_never_firing_is_bit_exact(self, model, seed,
                                                 policy):
        """Overload machinery that never triggers must not perturb the
        run: same records, same outputs, same metrics as the default."""
        base_engine, base = run_engine(
            model, engine_workload(model, seed=seed), policy=policy)
        armed_engine, armed = run_engine(
            model, engine_workload(model, seed=seed), NEVER_FIRING,
            policy=policy)
        assert [r.__dict__ for r in base.records] == \
            [r.__dict__ for r in armed.records]
        assert base.metrics == armed.metrics
        assert not armed.shed_records and not armed.timeout_records

    def test_generous_deadline_changes_only_metadata(self, model):
        plain = run_engine(model, engine_workload(model))[1]
        dated = run_engine(model,
                           engine_workload(model, deadline_s=1e6))[1]
        key = lambda r: (r.request_id, r.admit, r.first_token, r.finish,
                         r.output_len)
        assert [key(r) for r in plain.records] == \
            [key(r) for r in dated.records]
        assert dated.metrics.deadline_attainment == 1.0
        assert dated.metrics.goodput_tokens_per_s == pytest.approx(
            dated.metrics.tokens_per_s)


# ----------------------------------------------------------------------
# Deadlines and timeout cancellation (engine)
# ----------------------------------------------------------------------

class TestEngineDeadlines:
    def run_tight(self, model, **kw):
        reqs = engine_workload(model, n=24, rate=5000.0,
                               deadline_s=0.008)
        return run_engine(model, reqs, **kw)

    def test_timeouts_fire_and_account(self, model):
        engine, res = self.run_tight(model)
        assert res.timeout_records
        assert len(res.records) + len(res.shed_records) \
            + len(res.timeout_records) == 24
        assert res.metrics.timed_out == len(res.timeout_records)
        assert res.metrics.deadline_attainment < 1.0

    def test_stages_are_catalogued(self, model):
        _, res = self.run_tight(model)
        assert {t.stage for t in res.timeout_records} <= \
            set(TIMEOUT_STAGES)
        for t in res.timeout_records:
            assert t.cancelled_at > t.deadline >= t.arrival

    def test_cancellation_leaves_no_leaks(self, model):
        engine, _ = self.run_tight(model)
        assert_no_leaks(engine.pool, engine.scheduler)

    def test_cancellation_releases_cache_leases(self, model):
        engine, res = self.run_tight(model, prefix_cache=True,
                                     prefix_cache_blocks=16)
        assert res.timeout_records
        assert_no_leaks(engine.pool, engine.scheduler,
                        engine.prefix_cache)

    def test_deterministic_under_timeouts(self, model):
        a = self.run_tight(model)[1]
        b = self.run_tight(model)[1]
        assert a.timeout_records == b.timeout_records
        assert [r.__dict__ for r in a.records] == \
            [r.__dict__ for r in b.records]

    def test_met_deadline_property(self):
        rec = RequestRecord(request_id=0, arrival=0.0, admit=0.0,
                            first_token=0.1, finish=0.5, prompt_len=8,
                            output_len=4, deadline=0.6)
        assert rec.met_deadline
        assert not RequestRecord(
            request_id=0, arrival=0.0, admit=0.0, first_token=0.1,
            finish=0.7, prompt_len=8, output_len=4,
            deadline=0.6).met_deadline


# ----------------------------------------------------------------------
# Load shedding (engine)
# ----------------------------------------------------------------------

class TestEngineShedding:
    def test_bounded_queue_sheds_at_cap(self, model):
        overload = OverloadConfig(shed_policy="bounded-queue",
                                  max_queue_depth=2)
        reqs = engine_workload(model, n=24, rate=50000.0)
        _, res = run_engine(model, reqs, overload)
        assert res.shed_records
        assert all(s.reason == "queue-full" for s in res.shed_records)
        assert all(s.policy == "bounded-queue" for s in res.shed_records)
        assert len(res.records) + len(res.shed_records) == 24

    def test_deadline_estimate_sheds_unattainable_at_arrival(self, model):
        overload = OverloadConfig(shed_policy="deadline-estimate")
        reqs = engine_workload(model, n=24, rate=5000.0,
                               deadline_s=0.002)
        _, res = run_engine(model, reqs, overload)
        assert res.shed_records
        assert all(s.reason == "deadline-unattainable"
                   for s in res.shed_records)
        # Shed at the step boundary that first sees the arrival, before
        # any prefill work is invested.
        assert all(s.shed_at >= s.arrival for s in res.shed_records)

    def test_deadline_estimate_ignores_undated_requests(self, model):
        overload = OverloadConfig(shed_policy="deadline-estimate")
        reqs = engine_workload(model, n=24, rate=50000.0)
        _, res = run_engine(model, reqs, overload)
        assert not res.shed_records
        assert len(res.records) == 24

    def test_priority_sheds_batch_tier_first(self, model):
        overload = OverloadConfig(shed_policy="priority",
                                  max_queue_depth=2)
        reqs = engine_workload(model, n=32, rate=50000.0,
                               batch_fraction=0.5, seed=2)
        _, res = run_engine(model, reqs, overload)
        assert res.shed_records
        evicted = [s for s in res.shed_records
                   if s.reason == "priority-evict"]
        assert all(s.tier == "batch" for s in evicted)
        batch_shed = sum(1 for s in res.shed_records if s.tier == "batch")
        assert batch_shed >= len(res.shed_records) - batch_shed

    def test_shedding_keeps_goodput_under_tight_deadlines(self, model):
        """Refusing provably-doomed work must not deliver fewer in-time
        tokens than admitting everything."""
        reqs = lambda: engine_workload(model, n=32, rate=5000.0,
                                       deadline_s=0.006)
        base = run_engine(model, reqs())[1]
        shed = run_engine(model, reqs(),
                          OverloadConfig(
                              shed_policy="deadline-estimate"))[1]
        in_time = lambda res: sum(r.output_len for r in res.records
                                  if r.met_deadline)
        assert in_time(shed) >= in_time(base)


# ----------------------------------------------------------------------
# Graceful degradation (engine)
# ----------------------------------------------------------------------

class TestEngineDegradation:
    OVERLOAD = OverloadConfig(degrade_queue_depth=2,
                              degrade_max_new_tokens=2)

    def test_degraded_requests_get_capped_budgets(self, model):
        reqs = engine_workload(model, n=24, rate=50000.0)
        _, res = run_engine(model, reqs, self.OVERLOAD)
        degraded = [r for r in res.records if r.degraded]
        assert degraded
        assert res.metrics.degraded == len(degraded)
        assert all(r.output_len <= 2 for r in degraded)
        assert len(res.records) == 24  # degraded, not dropped

    def test_degraded_requests_bypass_prefix_cache(self, model):
        reqs = engine_workload(model, n=24, rate=50000.0)
        engine, res = run_engine(model, reqs, self.OVERLOAD,
                                 prefix_cache=True,
                                 prefix_cache_blocks=16)
        assert any(r.degraded for r in res.records)
        assert engine.prefix_cache.stats.bypassed > 0


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------

class TestCircuitBreaker:
    def test_lifecycle(self):
        brk = CircuitBreaker(cooldown_s=0.25, probes=2)
        assert brk.state == "closed" and brk.available(0.0)
        assert brk.ready_at == 0.0
        brk.trip(1.0, hold_s=0.5)
        assert brk.state == "open" and brk.trips == 1
        assert brk.ready_at == pytest.approx(1.75)
        assert not brk.available(1.5)
        assert brk.available(1.75)          # lazy open -> half-open
        assert brk.state == "half-open"
        brk.note_admit(1.75)
        assert brk.available(1.8)           # second probe allowed
        brk.note_admit(1.8)
        assert not brk.available(1.9)       # probes exhausted
        brk.note_success()
        assert brk.state == "closed" and brk.available(2.0)

    def test_trip_while_half_open_reopens(self):
        brk = CircuitBreaker(cooldown_s=0.1, probes=1)
        brk.trip(0.0)
        assert brk.available(0.2)
        brk.trip(0.2)
        assert brk.state == "open" and brk.trips == 2

    def test_validation(self):
        with pytest.raises(ValueError, match="cooldown_s"):
            CircuitBreaker(cooldown_s=0.0, probes=1)
        with pytest.raises(ValueError, match="probes"):
            CircuitBreaker(cooldown_s=1.0, probes=0)

    def test_cluster_breaker_trips_on_detections(self):
        overload = OverloadConfig(breaker=True)
        _, res = run_cluster(overload, mtbf=0.0002)
        assert res.breaker_trips > 0
        assert len(res.records) + len(res.failed_records) == \
            res.submitted

    def test_breaker_off_by_default(self):
        _, res = run_cluster(mtbf=0.0002)
        assert res.breaker_trips == 0


# ----------------------------------------------------------------------
# Cluster: parity, deadlines, queue observability
# ----------------------------------------------------------------------

class TestClusterOverload:
    @pytest.mark.parametrize("mtbf", [None, 0.0002])
    def test_armed_but_never_firing_is_bit_exact(self, mtbf):
        base = run_cluster(mtbf=mtbf)[1]
        armed = run_cluster(NEVER_FIRING, mtbf=mtbf)[1]
        assert [r.__dict__ for r in base.records] == \
            [r.__dict__ for r in armed.records]
        assert base.metrics == armed.metrics
        assert base.availability == armed.availability

    def test_default_run_has_no_queue_lane(self):
        _, res = run_cluster()
        assert res.queue_depth_series == []
        assert res.max_queue_depth == 0
        assert "queue-depth" not in res.lanes.get("cluster", {})

    def run_overloaded(self, **kw):
        return run_cluster(n=64, rate=200.0, deadline=0.5,
                           max_outstanding=2, **kw)

    def test_timeouts_account_and_leave_no_leaks(self):
        sim, res = self.run_overloaded()
        assert res.timeout_records
        assert len(res.records) + len(res.failed_records) \
            + len(res.shed_records) + len(res.timeout_records) == \
            res.submitted
        for replica in sim.replicas:
            assert_no_leaks(replica.pool, replica.scheduler,
                            replica.prefix_cache)
            assert not replica.outbox

    def test_queue_depth_series_and_counter_lane(self):
        _, res = self.run_overloaded()
        assert res.max_queue_depth > 0
        assert res.queue_depth_series
        assert res.max_queue_depth == max(
            d for _, d in res.queue_depth_series)
        times = [t for t, _ in res.queue_depth_series]
        assert times == sorted(times)
        lane = res.lanes["cluster"]["queue-depth"]
        assert all(e.category == "counter" for e in lane)
        assert [e.duration_s for e in lane] == \
            [float(d) for _, d in res.queue_depth_series]

    def test_shed_and_timeout_trace_events(self):
        _, res = self.run_overloaded(
            overload=OverloadConfig(shed_policy="bounded-queue",
                                    max_queue_depth=4))
        router = res.lanes["cluster"]["router"]
        assert any(e.category == "shed" for e in router)
        categories = {e.category
                      for lanes in res.lanes.values()
                      for events in lanes.values() for e in events}
        assert "timeout" in categories

    def test_bounded_queue_caps_cluster_queue(self):
        unshed = self.run_overloaded()[1]
        shed = self.run_overloaded(
            overload=OverloadConfig(shed_policy="bounded-queue",
                                    max_queue_depth=4))[1]
        assert unshed.max_queue_depth > 4
        assert shed.max_queue_depth <= 4
        assert shed.shed_records

    def test_shed_counts_against_availability(self):
        res = self.run_overloaded(
            overload=OverloadConfig(shed_policy="bounded-queue",
                                    max_queue_depth=4))[1]
        assert res.availability == pytest.approx(
            len(res.records) / res.submitted)
        assert res.availability < 1.0

    def test_to_dict_carries_overload_fields(self):
        data = self.run_overloaded(
            overload=OverloadConfig(shed_policy="bounded-queue",
                                    max_queue_depth=4))[1].to_dict()
        assert data["shed"] and data["timed_out"] is not None
        assert data["max_queue_depth"] <= 4
        assert data["queue_depth_series"]
        assert "breaker_trips" in data


class TestAvailabilitySemantics:
    REC = RequestRecord(request_id=0, arrival=0.0, admit=0.0,
                        first_token=0.2, finish=0.5, prompt_len=8,
                        output_len=4)

    def test_denominator_is_submitted(self):
        assert slo_availability([self.REC], 4) == 0.25
        assert slo_availability([self.REC], 1) == 1.0

    def test_slo_filters_numerator(self):
        assert slo_availability([self.REC], 2, slo_ttft_s=0.1) == 0.0
        assert slo_availability([self.REC], 2, slo_ttft_s=0.3) == 0.5

    def test_validation(self):
        with pytest.raises(ValueError, match="submitted"):
            slo_availability([], 0)


# ----------------------------------------------------------------------
# Seeded chaos: faults x shedding never lose or leak a request
# ----------------------------------------------------------------------

class TestChaosAccounting:
    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 2**16),
           mtbf=st.sampled_from([math.inf, 0.0005, 0.0002]),
           policy=st.sampled_from(["round-robin", "least-outstanding",
                                   "jskq"]),
           shed=st.sampled_from(SHED_POLICIES))
    def test_every_request_accounted_and_no_leaks(self, seed, mtbf,
                                                  policy, shed):
        overload = OverloadConfig(
            shed_policy=shed, breaker=True,
            **({"max_queue_depth": 8}
               if shed in ("bounded-queue", "priority") else {}))
        sim, res = run_cluster(
            overload, n=32, rate=30.0, deadline=1.0, seed=seed,
            fault_seed=seed + 1, mtbf=mtbf, policy=policy,
            max_outstanding=4, batch_fraction=0.3)
        ids = [r.request_id for r in res.records] \
            + [f.request_id for f in res.failed_records] \
            + [s.request_id for s in res.shed_records] \
            + [t.request_id for t in res.timeout_records]
        assert sorted(ids) == list(range(res.submitted))
        assert len(res.records) + len(res.failed_records) \
            + len(res.shed_records) + len(res.timeout_records) == \
            res.submitted
        for replica in sim.replicas:
            assert_no_leaks(replica.pool, replica.scheduler,
                            replica.prefix_cache)
            assert not replica.outbox


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

class TestOverloadCLI:
    def test_parser_defaults_and_alias(self):
        from repro.cli import build_parser
        args = build_parser().parse_args(["overload-bench"])
        assert args.loads == "0.5,1.0,1.5,2.0"
        assert args.deadline == 0.0
        alias = build_parser().parse_args(["overload"])
        assert alias.policies == args.policies

    def test_shared_flags_on_all_benches(self):
        from repro.cli import build_parser
        for cmd in ("serve-bench", "cluster-bench", "fault-bench"):
            args = build_parser().parse_args([cmd])
            assert args.deadline == 0.0
            assert args.shed_policy == "none"
            assert args.offered_load == 0.0
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve-bench", "--shed-policy",
                                       "edf"])

    def test_overload_bench_smoke(self, capsys, tmp_path):
        import json

        from repro.cli import main
        out = tmp_path / "bench.json"
        assert main(["overload-bench", "--smoke",
                     "--loads", "0.5,2", "--policies",
                     "none,deadline-estimate",
                     "--output", str(out)]) == 0
        text = capsys.readouterr().out
        assert "verdict" in text and "FAIL" not in text
        data = json.loads(out.read_text())
        assert data["deadline_s"] > 0
        assert len(data["sweep"]) == 4
        assert all(row["completed"] + row["shed"] + row["timed_out"]
                   == data["requests"] for row in data["sweep"])

    def test_serve_bench_with_overload_flags(self, capsys):
        from repro.cli import main
        assert main(["serve-bench", "--smoke", "--deadline", "0.05",
                     "--shed-policy", "deadline-estimate",
                     "--offered-load", "1.5"]) == 0
        assert "deadline" in capsys.readouterr().out

"""Tests for profiler export interop and the cross-platform comparison."""

import csv
import json

import numpy as np
import pytest

from repro.frontier import (FRONTIER, MemoryModel, SELENE_LIKE,
                            compare_platforms, make_simulator)
from repro.models import preset
from repro.parallel import ParallelConfig, TrainingSimulator
from repro.profiling import (build_step_trace, sample_run, save_chrome_trace,
                             smi_to_csv, to_chrome_trace)

M67 = preset("neox-6.7b-hf-52k").with_flash(2)


@pytest.fixture(scope="module")
def trace():
    sim = TrainingSimulator()
    profile = sim.step(M67, ParallelConfig(dp=256, zero_stage=1))
    return build_step_trace(M67, profile, flash=2)


@pytest.fixture(scope="module")
def smi_trace():
    sim = TrainingSimulator()
    profile = sim.step(M67, ParallelConfig(dp=256, zero_stage=1))
    mem = MemoryModel().breakdown(M67, micro_batch=8, dp=256,
                                  zero_stage=1).total / 1e9
    return sample_run(profile, memory_gb=mem, num_steps=2)


class TestChromeTraceExport:
    def test_document_structure(self, trace):
        doc = to_chrome_trace(trace)
        assert "traceEvents" in doc
        spans = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        assert len(spans) == len(trace.events)
        meta = [e for e in doc["traceEvents"] if e.get("ph") == "M"]
        assert any(e["name"] == "process_name" for e in meta)

    def test_timestamps_microseconds_and_ordered(self, trace):
        doc = to_chrome_trace(trace)
        spans = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        ts = [e["ts"] for e in spans]
        assert ts == sorted(ts)
        total_us = max(e["ts"] + e["dur"] for e in spans)
        assert total_us == pytest.approx(trace.duration_s * 1e6, rel=1e-6)

    def test_lanes_assigned(self, trace):
        doc = to_chrome_trace(trace)
        tids = {e["tid"] for e in doc["traceEvents"] if e.get("ph") == "X"}
        assert {1, 2, 3} <= tids  # compute, rccl, io lanes all used

    def test_save_round_trips_json(self, trace, tmp_path):
        path = save_chrome_trace(trace, tmp_path / "step")
        assert path.suffix == ".json"
        loaded = json.loads(path.read_text())
        assert loaded["displayTimeUnit"] == "ms"


class TestSmiCsvExport:
    def test_csv_contents(self, smi_trace, tmp_path):
        path = smi_to_csv(smi_trace, tmp_path / "smi")
        with open(path) as fh:
            rows = list(csv.reader(fh))
        assert rows[0] == ["time_s", "power_w", "memory_gb", "utilization"]
        assert len(rows) - 1 == len(smi_trace.samples)
        first = smi_trace.samples[0]
        assert float(rows[1][1]) == pytest.approx(first.power_w, abs=0.1)


class TestPlatformComparison:
    def test_selene_spec_is_ai_optimized(self):
        assert SELENE_LIKE.node.intra_node_bw_gbs > \
            FRONTIER.node.intra_node_bw_gbs
        assert SELENE_LIKE.node.nic_bw_gbs > FRONTIER.node.nic_bw_gbs

    def test_tp_advantage_larger_on_frontier(self):
        """Observation 2 is a Frontier-balance conclusion: on the
        AI-optimized fabric the TP=2-over-ZeRO advantage shrinks."""
        results = {c.platform: c for c in compare_platforms(M67, 256)}
        assert results["Frontier"].tp_advantage > \
            2 * results["Selene-like"].tp_advantage
        assert results["Frontier"].tp_advantage > 0.08

    def test_zero_scales_better_on_selene(self):
        frontier = make_simulator(FRONTIER)
        selene = make_simulator(SELENE_LIKE)
        def retention(sim):
            small = sim.per_gcd_tflops(M67, ParallelConfig(dp=64,
                                                           zero_stage=1))
            large = sim.per_gcd_tflops(M67, ParallelConfig(dp=256,
                                                           zero_stage=1))
            return large / small
        assert retention(selene) > retention(frontier)

    def test_make_simulator_default_degradation(self):
        f = make_simulator(FRONTIER)
        s = make_simulator(SELENE_LIKE)
        assert f.collectives.scale_degradation > \
            s.collectives.scale_degradation

"""Tests for the nn-style layer library."""

import numpy as np
import pytest

from repro.models import (Dropout, Embedding, LayerNorm, Linear, Module,
                          Parameter, RMSNorm, Tensor)


class TestLinear:
    def test_shapes_and_bias(self):
        lin = Linear(4, 6)
        out = lin(Tensor(np.ones((2, 3, 4))))
        assert out.shape == (2, 3, 6)

    def test_no_bias(self):
        lin = Linear(4, 6, bias=False)
        assert lin.bias is None
        assert len(lin.parameters()) == 1

    def test_gradient_flows_to_weight(self):
        lin = Linear(3, 2)
        lin(Tensor(np.ones((5, 3)))).sum().backward()
        assert lin.weight.grad is not None
        assert lin.bias.grad is not None
        np.testing.assert_allclose(lin.bias.grad, np.full(2, 5.0))


class TestEmbedding:
    def test_lookup(self):
        emb = Embedding(10, 4)
        out = emb(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 4)
        np.testing.assert_allclose(out.data[0, 0], emb.weight.data[1])

    def test_out_of_range_raises(self):
        emb = Embedding(10, 4)
        with pytest.raises(IndexError):
            emb(np.array([10]))
        with pytest.raises(IndexError):
            emb(np.array([-1]))


class TestNorms:
    def test_layernorm_normalizes(self):
        ln = LayerNorm(8)
        x = np.random.default_rng(0).normal(3.0, 5.0, size=(4, 8))
        out = ln(Tensor(x)).data
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-9)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-4)

    def test_rmsnorm_scale_invariant_direction(self):
        """RMSNorm(c*x) == RMSNorm(x) for c > 0 (no recentering)."""
        rn = RMSNorm(8)
        x = np.random.default_rng(1).normal(size=(3, 8))
        a = rn(Tensor(x)).data
        b = rn(Tensor(7.5 * x)).data
        # Invariance is exact only at eps=0; tolerance covers eps=1e-6.
        np.testing.assert_allclose(a, b, atol=1e-4)

    def test_rmsnorm_no_bias_parameter(self):
        assert len(RMSNorm(8).parameters()) == 1
        assert len(LayerNorm(8).parameters()) == 2

    def test_layernorm_shifts_with_nonzero_mean_but_rmsnorm_does_not(self):
        x = np.random.default_rng(2).normal(size=(2, 8))
        shifted = x + 100.0
        ln_out = LayerNorm(8)(Tensor(shifted)).data
        rn_out = RMSNorm(8)(Tensor(shifted)).data
        # LayerNorm removes the offset entirely.
        np.testing.assert_allclose(ln_out, LayerNorm(8)(Tensor(x)).data, atol=1e-6)
        # RMSNorm keeps it (output mean far from zero).
        assert abs(rn_out.mean()) > 0.5

    def test_norm_grads_flow(self):
        for norm in (LayerNorm(4), RMSNorm(4)):
            x = Tensor(np.random.default_rng(3).normal(size=(2, 4)),
                       requires_grad=True)
            norm(x).sum().backward()
            assert x.grad is not None and np.isfinite(x.grad).all()


class TestDropout:
    def test_eval_mode_identity(self):
        d = Dropout(0.5)
        d.eval()
        x = np.ones((4, 4))
        np.testing.assert_allclose(d(Tensor(x)).data, x)

    def test_train_mode_preserves_expectation(self):
        d = Dropout(0.3, rng=np.random.default_rng(0))
        x = np.ones((200, 200))
        out = d(Tensor(x)).data
        assert out.mean() == pytest.approx(1.0, abs=0.02)
        assert (out == 0).mean() == pytest.approx(0.3, abs=0.02)

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
        with pytest.raises(ValueError):
            Dropout(-0.1)


class TestModule:
    def test_named_parameters_nested(self):
        class Net(Module):
            def __init__(self):
                super().__init__()
                self.a = Linear(2, 3)
                self.blocks = [Linear(3, 3), Linear(3, 3)]

            def forward(self, x):
                return self.blocks[1](self.blocks[0](self.a(x)))

        net = Net()
        names = dict(net.named_parameters())
        assert "a.weight" in names
        assert "blocks.0.weight" in names
        assert "blocks.1.bias" in names
        assert net.num_parameters() == (2 * 3 + 3) + 2 * (3 * 3 + 3)

    def test_state_dict_roundtrip(self):
        a, b = Linear(4, 4), Linear(4, 4, rng=np.random.default_rng(99))
        assert not np.allclose(a.weight.data, b.weight.data)
        b.load_state_dict(a.state_dict())
        np.testing.assert_allclose(a.weight.data, b.weight.data)

    def test_state_dict_mismatch_raises(self):
        a = Linear(4, 4)
        state = a.state_dict()
        del state["bias"]
        with pytest.raises(KeyError):
            Linear(4, 4).load_state_dict(state)

    def test_state_dict_shape_mismatch_raises(self):
        state = Linear(4, 4).state_dict()
        with pytest.raises((ValueError, KeyError)):
            Linear(4, 5).load_state_dict(state)

    def test_zero_grad(self):
        lin = Linear(2, 2)
        lin(Tensor(np.ones((1, 2)))).sum().backward()
        assert lin.weight.grad is not None
        lin.zero_grad()
        assert lin.weight.grad is None

    def test_train_eval_propagates(self):
        class Net(Module):
            def __init__(self):
                super().__init__()
                self.drop = Dropout(0.5)
                self.inner = [Dropout(0.5)]

            def forward(self, x):
                return self.inner[0](self.drop(x))

        net = Net()
        net.eval()
        assert not net.drop.training and not net.inner[0].training
        net.train()
        assert net.drop.training and net.inner[0].training

    def test_parameter_is_tensor_with_grad(self):
        p = Parameter(np.ones(3))
        assert p.requires_grad

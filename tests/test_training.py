"""Tests for optimizers, schedules, precision emulation and the trainer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models import GPTModel, Linear, Parameter, Tensor, preset
from repro.training import (Adam, ConstantSchedule, CosineWarmupSchedule,
                            LAMB, LossCurveModel, LossRecipe, PrecisionPolicy,
                            SGD, Trainer, TrainerConfig, cast, clip_grad_norm,
                            round_bf16, round_fp16)


def quadratic_params(seed=0):
    """A toy problem: minimize ||w - target||^2."""
    rng = np.random.default_rng(seed)
    w = Parameter(rng.normal(size=(4, 4)))
    target = rng.normal(size=(4, 4))
    return w, target


def quad_loss_and_grad(w, target):
    w.zero_grad()
    loss = ((w - Tensor(target)) ** 2).sum()
    loss.backward()
    return loss.item()


class TestOptimizers:
    @pytest.mark.parametrize("opt_cls,kwargs", [
        (SGD, {"lr": 0.1}),
        (Adam, {"lr": 0.1, "weight_decay": 0.0}),
        (LAMB, {"lr": 0.1, "weight_decay": 0.0}),
    ])
    def test_converges_on_quadratic(self, opt_cls, kwargs):
        w, target = quadratic_params()
        opt = opt_cls([w], **kwargs)
        first = quad_loss_and_grad(w, target)
        for _ in range(200):
            quad_loss_and_grad(w, target)
            opt.step()
        final = quad_loss_and_grad(w, target)
        assert final < 0.01 * first

    def test_sgd_momentum(self):
        w, target = quadratic_params()
        opt = SGD([w], lr=0.02, momentum=0.9)
        for _ in range(100):
            quad_loss_and_grad(w, target)
            opt.step()
        assert quad_loss_and_grad(w, target) < 1e-3

    def test_adam_bias_correction_first_step(self):
        """After one step from zero moments, update ≈ lr * sign(grad)."""
        w = Parameter(np.zeros(3))
        opt = Adam([w], lr=0.1, weight_decay=0.0)
        w.grad = np.array([1.0, -2.0, 0.5])
        opt.step()
        np.testing.assert_allclose(w.data, [-0.1, 0.1, -0.1], atol=1e-6)

    def test_lamb_trust_ratio_recorded(self):
        w, target = quadratic_params()
        opt = LAMB([w], lr=0.01)
        quad_loss_and_grad(w, target)
        opt.step()
        assert len(opt.last_trust_ratios) == 1
        assert opt.last_trust_ratios[0] > 0

    def test_lamb_step_invariant_to_gradient_scale(self):
        """The trust ratio makes LAMB steps invariant to grad rescaling."""
        w1 = Parameter(np.array([1.0, 2.0]))
        w2 = Parameter(np.array([1.0, 2.0]))
        o1 = LAMB([w1], lr=0.1, weight_decay=0.0)
        o2 = LAMB([w2], lr=0.1, weight_decay=0.0)
        w1.grad = np.array([0.1, 0.2])
        w2.grad = np.array([100.0, 200.0])
        o1.step()
        o2.step()
        np.testing.assert_allclose(w1.data, w2.data, atol=1e-8)

    def test_weight_decay_decoupled(self):
        w = Parameter(np.array([10.0]))
        opt = Adam([w], lr=0.1, weight_decay=0.1)
        w.grad = np.array([0.0])
        opt.step()
        assert w.data[0] < 10.0  # decays even with zero gradient

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.ones(1))], lr=-1)
        with pytest.raises(ValueError):
            Adam([Parameter(np.ones(1))], betas=(1.5, 0.9))
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_state_bytes(self):
        p = [Parameter(np.ones(1))]
        assert Adam(p).state_bytes_per_param() == 8
        assert SGD(p).state_bytes_per_param() == 0

    def test_clip_grad_norm(self):
        p = Parameter(np.ones(4))
        p.grad = np.full(4, 10.0)  # norm 20
        norm = clip_grad_norm([p], max_norm=1.0)
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0, rel=1e-6)

    def test_clip_noop_under_limit(self):
        p = Parameter(np.ones(4))
        p.grad = np.full(4, 0.1)
        clip_grad_norm([p], max_norm=10.0)
        np.testing.assert_allclose(p.grad, 0.1)


class TestSchedules:
    def test_warmup_then_decay(self):
        sched = CosineWarmupSchedule(1.0, 1000, warmup_fraction=0.01,
                                     final_fraction=0.1)
        assert sched(0) < sched(9)
        assert sched(9) == pytest.approx(1.0)
        assert sched(999) == pytest.approx(0.1, abs=0.01)

    def test_monotone_decay_after_warmup(self):
        sched = CosineWarmupSchedule(1.0, 100)
        lrs = sched.as_array()
        post = lrs[sched.warmup_steps:]
        assert (np.diff(post) <= 1e-12).all()

    def test_floor_is_10pct(self):
        sched = CosineWarmupSchedule(0.01, 500)
        assert sched.final_lr == pytest.approx(0.001)

    def test_invalid(self):
        with pytest.raises(ValueError):
            CosineWarmupSchedule(-1, 100)
        with pytest.raises(ValueError):
            CosineWarmupSchedule(1.0, 100, warmup_fraction=1.5)
        with pytest.raises(ValueError):
            CosineWarmupSchedule(1.0, 100)(-1)

    def test_constant(self):
        s = ConstantSchedule(0.5)
        assert s(0) == s(1000) == 0.5


class TestPrecision:
    def test_bf16_is_top16_bits(self):
        x = np.array([1.0 + 2 ** -8])  # representable in bf16? mantissa 7 bits
        y = round_bf16(x)
        # bf16 has 7 mantissa bits so 1 + 2^-8 rounds to 1 or 1+2^-7.
        assert y[0] in (1.0, 1.0 + 2 ** -7)

    def test_bf16_exact_on_representable(self):
        for v in [0.0, 1.0, -2.5, 1024.0, 2.0 ** -100]:
            assert round_bf16(np.array([v]))[0] == v

    def test_bf16_preserves_range_fp16_does_not(self):
        """bf16's numerical-stability advantage: no overflow at 1e5."""
        big = np.array([1e5])
        assert np.isfinite(round_bf16(big)).all()
        assert np.isinf(round_fp16(big)).all()

    def test_fp16_more_precise_than_bf16_near_one(self):
        x = np.array([1.0009765625])  # 1 + 2^-10, exact in fp16
        assert round_fp16(x)[0] == x[0]
        assert round_bf16(x)[0] != x[0]

    def test_cast_dispatch(self):
        x = np.array([1.2345678])
        assert cast(x, "fp32")[0] == pytest.approx(x[0], abs=1e-7)
        with pytest.raises(ValueError):
            cast(x, "int8")

    def test_policy_roundtrip(self):
        lin = Linear(4, 4)
        policy = PrecisionPolicy("bf16")
        params = [lin.weight, lin.bias]
        orig = lin.weight.data.copy()
        masters = policy.quantize_params(params)
        assert not np.array_equal(lin.weight.data, orig)  # rounded
        policy.restore_params(params, masters)
        np.testing.assert_array_equal(lin.weight.data, orig)

    def test_overflow_risk_fp16(self):
        p = Parameter(np.ones(2))
        p.grad = np.array([1e6, 0.0])
        assert PrecisionPolicy("fp16").overflow_risk([p])
        assert not PrecisionPolicy("bf16").overflow_risk([p])

    @settings(max_examples=30, deadline=None)
    @given(st.floats(-1e30, 1e30, allow_nan=False))
    def test_property_bf16_idempotent(self, v):
        once = round_bf16(np.array([v]))
        twice = round_bf16(once)
        np.testing.assert_array_equal(once, twice)


class TestLossModel:
    @pytest.fixture(scope="class")
    def lm(self):
        return LossCurveModel()

    def test_fig13_lamb_beats_adam(self, lm):
        adam = lm.curve(LossRecipe(1.7e9, optimizer="adam", batch_tokens=1e6))
        lamb = lm.curve(LossRecipe(1.7e9, optimizer="lamb", batch_tokens=4e6))
        gain = 1 - lamb.final_train / adam.final_train
        assert 0.01 < gain < 0.05  # paper: ~2% smaller loss

    def test_fig13_spm_loss_bigger(self, lm):
        hf = lm.curve(LossRecipe(1.7e9, tokenizer="hf"))
        spm = lm.curve(LossRecipe(1.7e9, tokenizer="spm"))
        assert spm.final_train > 1.05 * hf.final_train

    def test_fig13_32k_loss_smaller(self, lm):
        v52 = lm.curve(LossRecipe(1.7e9, vocab_size=52000))
        v32 = lm.curve(LossRecipe(1.7e9, vocab_size=32000))
        assert v32.final_train < v52.final_train

    def test_fig13_bigger_model_lower_loss(self, lm):
        small = lm.curve(LossRecipe(1.7e9))
        big = lm.curve(LossRecipe(6.7e9))
        assert big.final_train < small.final_train

    def test_fig13_llama_below_neox_under_lamb(self, lm):
        llama = lm.curve(LossRecipe(1.7e9, arch="llama", optimizer="lamb"))
        neox = lm.curve(LossRecipe(1.7e9, arch="neox", optimizer="lamb"))
        assert llama.final_train < neox.final_train

    def test_fig13_tie_under_adam(self, lm):
        llama = lm.curve(LossRecipe(1.7e9, arch="llama", optimizer="adam",
                                    batch_tokens=1e6))
        neox = lm.curve(LossRecipe(1.7e9, arch="neox", optimizer="adam",
                                   batch_tokens=1e6))
        assert abs(llama.final_train - neox.final_train) \
            / llama.final_train < 0.01

    def test_precision_curves_almost_identical(self, lm):
        bf = lm.curve(LossRecipe(1.7e9, precision="bf16"))
        fp = lm.curve(LossRecipe(1.7e9, precision="fp16"))
        rel = np.abs(bf.train - fp.train) / bf.train
        assert rel.max() < 0.02

    def test_val_above_train(self, lm):
        c = lm.curve(LossRecipe(1.7e9))
        assert (c.val >= c.train * 0.999).all()

    def test_curves_decrease(self, lm):
        c = lm.curve(LossRecipe(1.7e9))
        assert c.train[0] > c.train[-1]
        # Overall decreasing trend (noise allows tiny local bumps).
        smooth = np.convolve(c.train, np.ones(10) / 10, mode="valid")
        assert (np.diff(smooth) < 1e-3).all()

    def test_train_starts_near_log_vocab(self, lm):
        c = lm.curve(LossRecipe(1.7e9, vocab_size=52000))
        assert abs(c.train[0] - np.log(52000)) < 1.0

    def test_eight_recipes(self, lm):
        recipes = lm.fig13_recipes()
        assert len(recipes) == 8
        assert len({r.label for r in recipes}) == 8

    def test_unmodeled_recipe_rejected(self, lm):
        with pytest.raises(ValueError):
            lm.curve(LossRecipe(1.7e9, optimizer="adafactor"))


@pytest.fixture(scope="module")
def small_dataset():
    from repro.data import AbstractGenerator, PackedDataset
    from repro.tokenizers import BPETokenizer
    texts = [d.text for d in AbstractGenerator(seed=0).sample(120)]
    tok = BPETokenizer().train(texts, 450)
    return PackedDataset.from_texts(texts, tok, seq_len=32)


class TestTrainer:
    def test_loss_decreases(self, small_dataset):
        model = GPTModel(preset("tiny-llama"), seed=0)
        trainer = Trainer(model, small_dataset,
                          TrainerConfig(optimizer="adam", lr=3e-3,
                                        batch_size=8, max_steps=25,
                                        eval_every=24))
        h = trainer.train()
        assert h.final_train_loss < h.train_loss[0] - 0.5
        assert len(h.train_loss) == 25
        assert h.val_loss  # evaluated at least once

    def test_neox_also_trains(self, small_dataset):
        model = GPTModel(preset("tiny-neox"), seed=0)
        h = Trainer(model, small_dataset,
                    TrainerConfig(optimizer="lamb", lr=0.02, batch_size=8,
                                  max_steps=20, eval_every=19)).train()
        assert h.final_train_loss < h.train_loss[0]

    def test_bf16_training_close_to_fp32(self, small_dataset):
        """The paper's precision ablation, at real (tiny) scale."""
        runs = {}
        for prec in ("fp32", "bf16"):
            model = GPTModel(preset("tiny-llama"), seed=0)
            h = Trainer(model, small_dataset,
                        TrainerConfig(optimizer="adam", lr=3e-3, batch_size=8,
                                      max_steps=15, eval_every=14,
                                      precision=prec)).train()
            runs[prec] = np.array(h.train_loss)
        diff = np.abs(runs["fp32"] - runs["bf16"]) / runs["fp32"]
        assert diff.max() < 0.05  # almost identical curves

    def test_lr_follows_schedule(self, small_dataset):
        model = GPTModel(preset("tiny-llama"), seed=0)
        trainer = Trainer(model, small_dataset,
                          TrainerConfig(optimizer="adam", lr=1e-3,
                                        batch_size=8, max_steps=12))
        h = trainer.train()
        assert max(h.lrs) <= 1e-3 + 1e-12   # never exceeds the peak
        assert h.lrs[-1] < h.lrs[0]         # cosine decay engaged

    def test_unknown_optimizer(self, small_dataset):
        model = GPTModel(preset("tiny-llama"), seed=0)
        with pytest.raises(ValueError):
            Trainer(model, small_dataset, TrainerConfig(optimizer="adamw2"))

    def test_smoothed_history(self, small_dataset):
        model = GPTModel(preset("tiny-llama"), seed=0)
        h = Trainer(model, small_dataset,
                    TrainerConfig(optimizer="adam", lr=3e-3, batch_size=8,
                                  max_steps=10, eval_every=9)).train()
        assert len(h.smoothed_train(3)) == 8

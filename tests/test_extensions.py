"""Tests for the extension features: grouped-query attention (LLaMA-2),
ZeRO stages 2/3, and the layout-guidance API."""

import numpy as np
import pytest

from repro.core import best_layout, recommend_layouts
from repro.frontier import MemoryModel
from repro.models import (CausalSelfAttention, GPTModel, ModelConfig, Tensor,
                          cross_entropy, layer_accounting, preset)
from repro.parallel import ParallelConfig, TrainingSimulator, build_schedule
from repro.parallel.collectives import CollectiveModel

M67 = preset("neox-6.7b-hf-52k").with_flash(1)
M17 = preset("neox-1.7b-hf-52k").with_flash(1)


def gqa_config(kv_heads):
    return ModelConfig(arch="llama", hidden_size=64, num_layers=2,
                       num_heads=8, num_kv_heads=kv_heads, vocab_size=256,
                       max_seq_len=32)


class TestGroupedQueryAttention:
    def test_kv_heads_must_divide(self):
        with pytest.raises(ValueError):
            ModelConfig(hidden_size=64, num_heads=8, num_kv_heads=3)
        with pytest.raises(ValueError):
            CausalSelfAttention(64, 8, 32, num_kv_heads=5)

    def test_param_count_matches_live_model(self):
        for kv in (1, 2, 4, 8):
            cfg = gqa_config(kv)
            model = GPTModel(cfg, seed=0)
            assert model.num_parameters() == cfg.num_parameters(), kv

    def test_gqa_reduces_parameters(self):
        full = gqa_config(8).num_parameters()
        grouped = gqa_config(2).num_parameters()
        mqa = gqa_config(1).num_parameters()
        assert mqa < grouped < full

    def test_kv_heads_property(self):
        assert gqa_config(2).kv_heads == 2
        assert preset("tiny-llama").kv_heads == 4  # defaults to num_heads

    def test_forward_and_backward(self):
        model = GPTModel(gqa_config(2), seed=0)
        ids = np.random.default_rng(0).integers(0, 256, size=(2, 12))
        loss = cross_entropy(model(ids[:, :-1]), ids[:, 1:])
        loss.backward()
        assert np.isfinite(loss.item())
        assert all(p.grad is not None for p in model.parameters())

    def test_gqa_preserves_causality(self):
        attn = CausalSelfAttention(32, 4, max_seq_len=16, num_kv_heads=2)
        attn.eval()
        rng = np.random.default_rng(1)
        x = rng.normal(size=(1, 8, 32))
        base = attn(Tensor(x)).data
        x2 = x.copy()
        x2[0, 7] += 5.0
        np.testing.assert_allclose(attn(Tensor(x2)).data[0, :7],
                                   base[0, :7], atol=1e-10)

    def test_gqa_equals_mha_when_kv_equals_heads(self):
        """num_kv_heads == num_heads must be numerically identical to MHA."""
        a = CausalSelfAttention(32, 4, 16, rng=np.random.default_rng(3))
        b = CausalSelfAttention(32, 4, 16, num_kv_heads=4,
                                rng=np.random.default_rng(3))
        x = Tensor(np.random.default_rng(4).normal(size=(1, 6, 32)))
        np.testing.assert_allclose(a(x).data, b(x).data, atol=1e-12)

    def test_flops_accounting_reflects_gqa(self):
        full = layer_accounting(gqa_config(8), seq_len=32, batch_size=2)
        mqa = layer_accounting(gqa_config(1), seq_len=32, batch_size=2)
        assert mqa.flops_by_component()["qkv"] < \
            full.flops_by_component()["qkv"]
        assert mqa.params["attention"] < full.params["attention"]

    def test_gqa_trains(self):
        from repro.data import PackedDataset
        docs = [np.random.default_rng(7).integers(0, 256, size=400)]
        ds = PackedDataset(docs, seq_len=16, val_fraction=0.0)
        from repro.training import Trainer, TrainerConfig
        model = GPTModel(gqa_config(2), seed=0)
        h = Trainer(model, ds, TrainerConfig(optimizer="adam", lr=3e-3,
                                             batch_size=4, max_steps=15,
                                             eval_every=1000)).train()
        assert h.train_loss[-1] < h.train_loss[0]


class TestZeroStages:
    @pytest.fixture(scope="class")
    def mm(self):
        return MemoryModel()

    def test_memory_monotone_in_stage(self, mm):
        states = [mm.breakdown(M67, dp=64, zero_stage=z).model_states
                  for z in (0, 1, 2, 3)]
        assert states[0] > states[1] > states[2] > states[3]

    def test_stage3_approaches_full_shard(self, mm):
        b = mm.breakdown(M67, dp=64, zero_stage=3)
        params = M67.num_parameters()
        assert b.model_states == pytest.approx(12.0 * params / 64, rel=0.05)

    def test_stage2_same_traffic_as_stage1(self):
        cm = CollectiveModel()
        s1 = build_schedule(M67, ParallelConfig(dp=64, zero_stage=1), cm,
                            2048, 16384)
        s2 = build_schedule(M67, ParallelConfig(dp=64, zero_stage=2), cm,
                            2048, 16384)
        assert s1.log.total_bytes == s2.log.total_bytes

    def test_stage3_doubles_gather_traffic(self):
        cm = CollectiveModel()
        s1 = build_schedule(M67, ParallelConfig(dp=64, zero_stage=1), cm,
                            2048, 16384)
        s3 = build_schedule(M67, ParallelConfig(dp=64, zero_stage=3), cm,
                            2048, 16384)
        assert s3.log.total_bytes == pytest.approx(2 * s1.log.total_bytes,
                                                   rel=0.01)

    def test_stage3_slower_stage2_comparable(self):
        sim = TrainingSimulator()
        t1 = sim.per_gcd_tflops(M67, ParallelConfig(dp=256, zero_stage=1))
        t2 = sim.per_gcd_tflops(M67, ParallelConfig(dp=256, zero_stage=2))
        t3 = sim.per_gcd_tflops(M67, ParallelConfig(dp=256, zero_stage=3))
        assert t3 < t1        # extra parameter gathers cost throughput
        assert abs(t2 - t1) / t1 < 0.05

    def test_invalid_stage(self):
        with pytest.raises(ValueError):
            ParallelConfig(dp=8, zero_stage=4)


class TestGuidance:
    def test_observation2_derived_automatically(self):
        """Best layouts match the paper's guidance at each scale."""
        assert best_layout(M17, 256).label == "DP"
        assert best_layout(M67, 8).label == "ZeRO=1"
        assert best_layout(M67, 256).label == "TP=2"

    def test_infeasible_layouts_rejected(self):
        recs = recommend_layouts(M67, 8, include_infeasible=True)
        plain_dp = [r for r in recs if r.label == "DP"]
        assert plain_dp and not plain_dp[0].fits
        assert "rejected" in plain_dp[0].rationale

    def test_feasible_only_by_default(self):
        recs = recommend_layouts(M67, 8)
        assert all(r.fits for r in recs)
        assert all(r.per_gcd_tflops > 0 for r in recs)

    def test_sorted_by_throughput(self):
        recs = recommend_layouts(M67, 64, max_tp=4, max_pp=4)
        tflops = [r.per_gcd_tflops for r in recs if r.fits]
        assert tflops == sorted(tflops, reverse=True)

    def test_rationales_informative(self):
        recs = recommend_layouts(M67, 256, max_tp=2, max_pp=2)
        by_label = {r.label: r for r in recs}
        assert "200 GB/s" in by_label["TP=2"].rationale
        assert "bubble" in by_label["PP=2"].rationale
        assert "optimizer states" in by_label["ZeRO=1"].rationale

    def test_no_valid_layout_raises(self):
        # 12 GPUs violates Eq. 5 (whole-node allocations of 8).
        with pytest.raises(ValueError):
            recommend_layouts(M17, 12)

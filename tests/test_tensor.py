"""Unit and property tests for the autograd engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.models.tensor import Tensor, is_grad_enabled, no_grad


def numeric_grad(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar-valued fn at x."""
    g = np.zeros_like(x)
    flat = x.reshape(-1)
    gf = g.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = fn(x)
        flat[i] = orig - eps
        lo = fn(x)
        flat[i] = orig
        gf[i] = (hi - lo) / (2 * eps)
    return g


def check_grad(op, x: np.ndarray, atol: float = 1e-6) -> None:
    t = Tensor(x.copy(), requires_grad=True)
    out = op(t)
    out.sum().backward() if out.data.ndim else out.backward()
    expected = numeric_grad(lambda a: float(op(Tensor(a)).data.sum()), x.copy())
    np.testing.assert_allclose(t.grad, expected, atol=atol, rtol=1e-4)


RNG = np.random.default_rng(42)


class TestElementwiseGrads:
    @pytest.mark.parametrize("op,domain", [
        (lambda t: t.exp(), (-2, 2)),
        (lambda t: t.log(), (0.1, 3)),
        (lambda t: t.sqrt(), (0.1, 3)),
        (lambda t: t.tanh(), (-2, 2)),
        (lambda t: t.sigmoid(), (-2, 2)),
        (lambda t: t.relu(), (0.05, 2)),  # avoid the kink at 0
        (lambda t: t.gelu(), (-2, 2)),
        (lambda t: t.silu(), (-2, 2)),
        (lambda t: t * t, (-2, 2)),
        (lambda t: t ** 3, (-2, 2)),
        (lambda t: t ** -0.5, (0.2, 2)),
        (lambda t: 1.0 / t, (0.3, 2)),
        (lambda t: -t, (-2, 2)),
    ])
    def test_gradcheck(self, op, domain):
        x = RNG.uniform(*domain, size=(3, 4))
        check_grad(op, x)

    def test_softmax_grad(self):
        check_grad(lambda t: (t.softmax(axis=-1) * Tensor(np.arange(12.).reshape(3, 4))).sum(),
                   RNG.normal(size=(3, 4)))

    def test_log_softmax_grad(self):
        w = Tensor(RNG.normal(size=(3, 4)))
        check_grad(lambda t: (t.log_softmax(axis=-1) * w).sum(),
                   RNG.normal(size=(3, 4)))

    def test_max_grad(self):
        x = RNG.normal(size=(3, 4))
        check_grad(lambda t: t.max(axis=-1).sum(), x)


class TestBinaryGrads:
    def test_add_broadcast(self):
        a = Tensor(RNG.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(RNG.normal(size=(4,)), requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((3, 4)))
        np.testing.assert_allclose(b.grad, np.full(4, 3.0))

    def test_mul_broadcast_grad(self):
        a = RNG.normal(size=(2, 3))
        bval = RNG.normal(size=(3,))
        ta = Tensor(a, requires_grad=True)
        tb = Tensor(bval, requires_grad=True)
        (ta * tb).sum().backward()
        np.testing.assert_allclose(ta.grad, np.broadcast_to(bval, a.shape))
        np.testing.assert_allclose(tb.grad, a.sum(axis=0))

    def test_div_grads(self):
        a = Tensor(np.array([2.0, 4.0]), requires_grad=True)
        b = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        (a / b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 0.5])
        np.testing.assert_allclose(b.grad, [-2.0, -1.0])

    def test_matmul_2d(self):
        a = RNG.normal(size=(3, 4))
        b = RNG.normal(size=(4, 5))
        ta, tb = Tensor(a, requires_grad=True), Tensor(b, requires_grad=True)
        (ta @ tb).sum().backward()
        np.testing.assert_allclose(ta.grad, np.ones((3, 5)) @ b.T)
        np.testing.assert_allclose(tb.grad, a.T @ np.ones((3, 5)))

    def test_matmul_batched(self):
        a = RNG.normal(size=(2, 3, 4))
        b = RNG.normal(size=(2, 4, 5))
        ta, tb = Tensor(a, requires_grad=True), Tensor(b, requires_grad=True)
        (ta @ tb).sum().backward()
        g = np.ones((2, 3, 5))
        np.testing.assert_allclose(ta.grad, g @ np.swapaxes(b, -1, -2))
        np.testing.assert_allclose(tb.grad, np.swapaxes(a, -1, -2) @ g)

    def test_matmul_broadcast_weight(self):
        """(B, S, H) @ (H, H) — the Linear-layer pattern."""
        x = RNG.normal(size=(2, 3, 4))
        w = RNG.normal(size=(4, 4))
        tx, tw = Tensor(x, requires_grad=True), Tensor(w, requires_grad=True)
        (tx @ tw).sum().backward()
        assert tw.grad.shape == w.shape
        np.testing.assert_allclose(
            tw.grad, x.reshape(-1, 4).T @ np.ones((6, 4)))


class TestShapeOps:
    def test_reshape_transpose_roundtrip_grad(self):
        x = Tensor(RNG.normal(size=(2, 3, 4)), requires_grad=True)
        y = x.reshape(6, 4).transpose().reshape(4, 6)
        y.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((2, 3, 4)))

    def test_getitem_grad(self):
        x = Tensor(RNG.normal(size=(5, 4)), requires_grad=True)
        x[1:3].sum().backward()
        expected = np.zeros((5, 4))
        expected[1:3] = 1.0
        np.testing.assert_allclose(x.grad, expected)

    def test_concatenate_grad(self):
        a = Tensor(RNG.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(RNG.normal(size=(2, 2)), requires_grad=True)
        out = Tensor.concatenate([a, b], axis=1)
        assert out.shape == (2, 5)
        (out * 2.0).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 3), 2.0))
        np.testing.assert_allclose(b.grad, np.full((2, 2), 2.0))

    def test_swapaxes_grad(self):
        x = Tensor(RNG.normal(size=(2, 3, 4)), requires_grad=True)
        x.swapaxes(1, 2).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((2, 3, 4)))

    def test_embedding_lookup_accumulates_duplicates(self):
        w = Tensor(RNG.normal(size=(10, 4)), requires_grad=True)
        idx = np.array([1, 1, 3])
        w.embedding_lookup(idx).sum().backward()
        expected = np.zeros((10, 4))
        expected[1] = 2.0
        expected[3] = 1.0
        np.testing.assert_allclose(w.grad, expected)


class TestReductions:
    def test_sum_axis_keepdims(self):
        x = Tensor(RNG.normal(size=(2, 3)), requires_grad=True)
        x.sum(axis=0, keepdims=True).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((2, 3)))

    def test_mean_value_and_grad(self):
        x = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        m = x.mean()
        assert m.item() == pytest.approx(2.5)
        m.backward()
        np.testing.assert_allclose(x.grad, np.full((2, 3), 1 / 6))

    def test_var_matches_numpy(self):
        x = RNG.normal(size=(4, 5))
        np.testing.assert_allclose(Tensor(x).var(axis=-1).data,
                                   x.var(axis=-1), atol=1e-12)


class TestGraphMechanics:
    def test_grad_accumulates_over_reuse(self):
        x = Tensor(np.array([3.0]), requires_grad=True)
        y = x * x + x  # dy/dx = 2x + 1 = 7
        y.backward()
        np.testing.assert_allclose(x.grad, [7.0])

    def test_no_grad_context(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
            x = Tensor(np.ones(3), requires_grad=True)
            y = x * 2
            assert not y.requires_grad
        assert is_grad_enabled()

    def test_detach_severs_graph(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = x.detach() * 2
        assert not y.requires_grad

    def test_backward_diamond(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        a = x * 3
        b = x * 5
        (a * b).backward()  # d(15x^2)/dx = 30x = 60
        np.testing.assert_allclose(x.grad, [60.0])

    def test_masked_fill(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        mask = np.array([[True, False], [False, True]])
        y = x.masked_fill(mask, -99.0)
        np.testing.assert_allclose(y.data, [[-99, 1], [1, -99]])
        y.sum().backward()
        np.testing.assert_allclose(x.grad, (~mask).astype(float))

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor(np.ones(2)) ** Tensor(np.ones(2))


@settings(max_examples=40, deadline=None)
@given(hnp.arrays(np.float64, hnp.array_shapes(min_dims=1, max_dims=3,
                                               min_side=1, max_side=5),
                  elements=st.floats(-10, 10)))
def test_softmax_rows_sum_to_one(x):
    s = Tensor(x).softmax(axis=-1).data
    np.testing.assert_allclose(s.sum(axis=-1), 1.0, atol=1e-9)
    assert (s >= 0).all()


@settings(max_examples=40, deadline=None)
@given(hnp.arrays(np.float64, (3, 4), elements=st.floats(-5, 5)),
       hnp.arrays(np.float64, (3, 4), elements=st.floats(-5, 5)))
def test_add_commutes_and_grads_match(a, b):
    ta = Tensor(a, requires_grad=True)
    tb = Tensor(b, requires_grad=True)
    (ta + tb).sum().backward()
    np.testing.assert_allclose(ta.grad, tb.grad)
    np.testing.assert_allclose((ta + tb).data, (tb + ta).data)


@settings(max_examples=30, deadline=None)
@given(hnp.arrays(np.float64, (4, 3), elements=st.floats(-3, 3)))
def test_logsoftmax_equals_log_of_softmax(x):
    t = Tensor(x)
    np.testing.assert_allclose(t.log_softmax(axis=-1).data,
                               np.log(t.softmax(axis=-1).data + 1e-300),
                               atol=1e-8)

"""Tests for the serving subsystem: paged KV pool, continuous-batching
scheduler, decode engine, workloads, metrics, Frontier extrapolation."""

import numpy as np
import pytest

from repro.models import GPTModel, ModelConfig, preset
from repro.serving import (ContinuousBatchScheduler, DecodeCostModel,
                           FrontierServingEstimate, KVPoolConfig,
                           PagedKVPool, Request, SchedulerConfig,
                           ServeResult, ServingConfig, ServingEngine,
                           ServingPerfModel, ServingResultBase,
                           WorkloadConfig, format_estimate, format_metrics,
                           kv_bytes_per_token, run_sequential,
                           synthesize_workload)


@pytest.fixture(scope="module")
def model():
    return GPTModel(preset("tiny-llama"), seed=0)


def make_workload(model, n=16, rate=2000.0, seed=0, **kw):
    cfg = WorkloadConfig(num_requests=n, arrival_rate=rate, seed=seed, **kw)
    return synthesize_workload(cfg, model.config)


class TestKVPool:
    def test_bytes_per_token_matches_live_cache(self, model):
        """Analytic per-token bytes agree with an actual KVCache."""
        from repro.models import KVCache
        caches = [KVCache() for _ in model.layers]
        model._forward_cached(np.arange(10)[None], caches)
        live = sum(c.memory_bytes() for c in caches)
        assert kv_bytes_per_token(model.config) * 10 == live

    def test_gqa_shrinks_token_cost(self):
        mha = ModelConfig(arch="llama", hidden_size=64, num_layers=2,
                          num_heads=8, vocab_size=256, max_seq_len=64)
        gqa = ModelConfig(arch="llama", hidden_size=64, num_layers=2,
                          num_heads=8, num_kv_heads=2, vocab_size=256,
                          max_seq_len=64)
        assert kv_bytes_per_token(gqa) == kv_bytes_per_token(mha) // 4

    def test_alloc_grow_free_cycle(self, model):
        pool = PagedKVPool(model.config, KVPoolConfig(block_size=4,
                                                      num_blocks=8))
        assert pool.allocate(1, 5)          # 2 blocks
        assert pool.blocks_used == 2
        assert pool.allocate(1, 6)          # still 2 blocks
        assert pool.blocks_used == 2
        assert pool.allocate(1, 9)          # grows to 3
        assert pool.blocks_used == 3
        assert pool.free(1) == 3
        assert pool.blocks_used == 0

    def test_all_or_nothing_on_exhaustion(self, model):
        pool = PagedKVPool(model.config, KVPoolConfig(block_size=4,
                                                      num_blocks=2))
        assert pool.allocate(1, 4)
        assert not pool.allocate(2, 8)      # needs 2, only 1 free
        assert pool.blocks_used == 1        # nothing leaked
        assert pool.alloc_failures == 1
        assert pool.can_allocate(2, 4)

    def test_fragmentation_and_peak(self, model):
        pool = PagedKVPool(model.config, KVPoolConfig(block_size=8,
                                                      num_blocks=4))
        pool.allocate(1, 9)                 # 2 blocks, 9/16 slots filled
        assert pool.fragmentation() == pytest.approx(7 / 16)
        pool.free(1)
        assert pool.fragmentation() == 0.0
        assert pool.peak_blocks_used == 2
        assert pool.peak_utilization == pytest.approx(0.5)

    def test_budget_sizing_from_hbm(self):
        config = preset("llama-1.7b-hf-52k")
        pool = PagedKVPool(config, KVPoolConfig(block_size=16))
        # 64 GB minus ~3.4 GB of weights, at 36 KB/token/2 per block…
        expected = int((64e9 - 2.0 * config.num_parameters())
                       // (16 * kv_bytes_per_token(config)))
        assert pool.num_blocks == expected
        assert pool.num_blocks > 0

    def test_oversized_model_rejected(self):
        config = preset("llama-6.7b-hf-52k")
        with pytest.raises(ValueError):
            PagedKVPool(config, KVPoolConfig(hbm_gb=1.0))


class TestScheduler:
    def _pool(self, model, blocks=64, block_size=4):
        return PagedKVPool(model.config,
                           KVPoolConfig(block_size=block_size,
                                        num_blocks=blocks))

    def _req(self, i, plen, arrival=0.0, max_new=4):
        return Request(request_id=i, prompt=np.arange(1, plen + 1),
                       max_new_tokens=max_new, arrival_time=arrival)

    def test_fcfs_admits_in_arrival_order(self, model):
        sched = ContinuousBatchScheduler(self._pool(model),
                                         SchedulerConfig(policy="fcfs"))
        for i, (plen, t) in enumerate([(8, 0.2), (2, 0.1), (5, 0.3)]):
            sched.submit(self._req(i, plen, arrival=t))
        admitted = sched.admit(now=1.0)
        assert [r.request_id for r in admitted] == [1, 0, 2]

    def test_spf_admits_shortest_prompt_first(self, model):
        sched = ContinuousBatchScheduler(self._pool(model),
                                         SchedulerConfig(policy="spf"))
        for i, plen in enumerate([8, 2, 5]):
            sched.submit(self._req(i, plen, arrival=0.0))
        admitted = sched.admit(now=0.0)
        assert [r.request_id for r in admitted] == [1, 2, 0]

    def test_batch_size_cap(self, model):
        sched = ContinuousBatchScheduler(
            self._pool(model), SchedulerConfig(max_batch_size=2))
        for i in range(4):
            sched.submit(self._req(i, 3))
        assert len(sched.admit(now=0.0)) == 2
        assert sched.queue_depth == 2

    def test_token_budget_cap(self, model):
        sched = ContinuousBatchScheduler(
            self._pool(model), SchedulerConfig(max_batch_tokens=20))
        for i in range(3):
            sched.submit(self._req(i, 6, max_new=4))  # 10 tokens each
        assert len(sched.admit(now=0.0)) == 2
        assert sched.queue_depth == 1

    def test_pool_exhaustion_blocks_admission(self, model):
        sched = ContinuousBatchScheduler(self._pool(model, blocks=2))
        sched.submit(self._req(0, 7))   # 8 slots with next token: 2 blocks
        sched.submit(self._req(1, 7))
        assert len(sched.admit(now=0.0)) == 1
        assert sched.queue_depth == 1

    def test_preempt_victim_is_lifo_and_requeued(self, model):
        sched = ContinuousBatchScheduler(self._pool(model))
        reqs = [self._req(i, 3, arrival=float(i)) for i in range(3)]
        for r in reqs:
            sched.submit(r)
        sched.admit(now=5.0)
        victim = sched.preempt_victim(keep=reqs[2])
        assert victim is reqs[1]        # last admitted other than keep
        assert victim.preemptions == 1
        assert victim in sched.waiting
        assert sched.pool.tokens_of(victim.request_id) == 0

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            SchedulerConfig(policy="lifo")
        with pytest.raises(ValueError):
            SchedulerConfig(max_batch_size=0)
        with pytest.raises(ValueError):
            Request(request_id=0, prompt=np.array([]), max_new_tokens=4)


class TestWorkload:
    def test_seeded_workload_is_deterministic(self, model):
        a = make_workload(model, n=20, seed=7)
        b = make_workload(model, n=20, seed=7)
        for ra, rb in zip(a, b):
            assert ra.arrival_time == rb.arrival_time
            np.testing.assert_array_equal(ra.prompt, rb.prompt)
            assert ra.max_new_tokens == rb.max_new_tokens

    def test_poisson_rate_roughly_respected(self, model):
        reqs = make_workload(model, n=200, rate=100.0, seed=0)
        mean_gap = reqs[-1].arrival_time / len(reqs)
        assert 0.5 / 100.0 < mean_gap < 2.0 / 100.0

    def test_lengths_respect_context(self, model):
        reqs = make_workload(model, n=50, seed=3)
        for r in reqs:
            assert r.budget_tokens <= model.config.max_seq_len

    def test_bad_config_rejected(self):
        with pytest.raises(ValueError):
            WorkloadConfig(num_requests=0)
        with pytest.raises(ValueError):
            WorkloadConfig(arrival_rate=0.0)
        with pytest.raises(ValueError):
            WorkloadConfig(prompt_len_range=(5, 2))


def _tight_engine(model, blocks, batch=4):
    return ServingEngine(model, ServingConfig(max_batch_size=batch,
                                              block_size=4,
                                              num_blocks=blocks))


class TestEngine:
    def test_all_requests_complete(self, model):
        reqs = make_workload(model, n=16)
        result = ServingEngine(model).run(reqs)
        assert result.metrics.num_requests == 16
        assert sorted(result.outputs) == list(range(16))

    def test_outputs_match_generate_exactly(self, model):
        """Engine tokens are bit-identical to cached greedy generate."""
        reqs = make_workload(model, n=8)
        result = ServingEngine(model).run(reqs)
        for r in reqs:
            expected = model.generate(r.prompt, r.max_new_tokens,
                                      use_cache=True)[r.prompt_len:]
            np.testing.assert_array_equal(result.outputs[r.request_id],
                                          expected)

    def test_continuous_batching_beats_sequential(self, model):
        """The acceptance bar: batched tokens/s > one-at-a-time."""
        reqs = make_workload(model, n=24, rate=2000.0)
        batched = ServingEngine(model).run(reqs)
        seq = run_sequential(model, make_workload(model, n=24, rate=2000.0))
        assert batched.metrics.mean_batch_size > 1.5
        assert batched.metrics.tokens_per_s > 1.2 * seq.metrics.tokens_per_s

    def test_preempted_requests_all_complete(self, model):
        """A pool too small for the batch forces requeues, yet every
        request finishes with the right tokens."""
        reqs = make_workload(model, n=12, rate=5000.0)
        result = _tight_engine(model, blocks=12).run(reqs)
        assert result.metrics.num_requests == 12
        assert result.metrics.preemptions > 0
        preempted = [r for r in result.records if r.preemptions > 0]
        assert preempted, "tight pool should actually requeue someone"
        for r in reqs:
            expected = model.generate(r.prompt, r.max_new_tokens,
                                      use_cache=True)[r.prompt_len:]
            np.testing.assert_array_equal(result.outputs[r.request_id],
                                          expected)

    def test_no_livelock_under_extreme_contention(self, model):
        """Regression: with a pool much smaller than aggregate demand,
        victim choice must include the grower itself (youngest-first),
        or two requests crossing block boundaries alternately evict
        each other forever.  max_steps converts a livelock into a
        failure instead of a hang."""
        reqs = make_workload(model, n=20, rate=5000.0)
        engine = ServingEngine(model, ServingConfig(max_batch_size=8,
                                                    block_size=4,
                                                    num_blocks=10,
                                                    max_steps=5000))
        result = engine.run(reqs)
        assert result.metrics.num_requests == 20
        assert result.metrics.peak_pool_utilization == 1.0

    def test_trace_and_metrics_deterministic(self, model):
        runs = []
        for _ in range(2):
            reqs = make_workload(model, n=16, seed=5)
            runs.append(ServingEngine(model).run(reqs))
        assert runs[0].trace == runs[1].trace
        assert runs[0].metrics == runs[1].metrics

    def test_eos_stops_requests_early(self, model):
        reqs = make_workload(model, n=8, seed=2)
        probe = ServingEngine(model).run(
            make_workload(model, n=8, seed=2))
        # Use a token some request actually produces as the eos id.
        eos = int(probe.outputs[0][0])
        for r in reqs:
            r.eos_id = eos
        result = ServingEngine(model).run(reqs)
        lengths = {i: len(result.outputs[i]) for i in result.outputs}
        assert lengths[0] == 1  # request 0 hits eos on its first token
        for r in reqs:
            expected = model.generate(r.prompt, r.max_new_tokens,
                                      use_cache=True,
                                      eos_id=eos)[r.prompt_len:]
            np.testing.assert_array_equal(result.outputs[r.request_id],
                                          expected)

    def test_oversized_request_rejected(self, model):
        big = Request(request_id=0, prompt=np.arange(1, 60),
                      max_new_tokens=30)  # 89 > max_seq_len 64
        with pytest.raises(ValueError):
            ServingEngine(model).run([big])

    def test_request_larger_than_pool_rejected(self, model):
        req = Request(request_id=0, prompt=np.arange(1, 20),
                      max_new_tokens=10)
        with pytest.raises(ValueError):
            _tight_engine(model, blocks=2).run([req])

    def test_pool_empty_after_run(self, model):
        engine = ServingEngine(model)
        engine.run(make_workload(model, n=8))
        assert engine.pool.blocks_used == 0
        assert engine.pool.peak_blocks_used > 0

    def test_metrics_are_sane(self, model):
        result = ServingEngine(model).run(make_workload(model, n=16))
        m = result.metrics
        assert m.ttft_p50 <= m.ttft_p95
        assert m.latency_p50 <= m.latency_p95 <= m.latency_p99
        assert m.tokens_per_s > 0
        assert 0.0 < m.peak_pool_utilization <= 1.0
        for rec in result.records:
            assert rec.arrival <= rec.first_token <= rec.finish
            assert rec.ttft > 0 and rec.latency > 0
        assert "tok/s" in format_metrics(m)


class TestServingConfig:
    """The unified replica description shared by engine and cluster."""

    def test_frozen_and_validated(self):
        cfg = ServingConfig()
        with pytest.raises((AttributeError, TypeError)):
            cfg.max_batch_size = 2
        for bad in (dict(policy="lifo"), dict(max_batch_size=0),
                    dict(block_size=0), dict(tensor_parallel=0),
                    dict(step_overhead_s=-1.0), dict(max_steps=0)):
            with pytest.raises(ValueError):
                ServingConfig(**bad)

    def test_engine_consumes_config(self, model):
        cfg = ServingConfig(policy="spf", max_batch_size=2, block_size=4,
                            num_blocks=32)
        engine = ServingEngine(model, cfg)
        assert engine.scheduler.config.policy == "spf"
        assert engine.pool.block_size == 4
        assert engine.pool.num_blocks == 32
        result = engine.run(make_workload(model, n=6))
        assert result.metrics.num_requests == 6
        assert result.metrics.mean_batch_size <= 2.0

    def test_legacy_scheduler_kwargs_warn_but_work(self, model):
        with pytest.deprecated_call():
            engine = ServingEngine(
                model, scheduler_config=SchedulerConfig(policy="spf"))
        assert engine.scheduler.config.policy == "spf"
        with pytest.deprecated_call():
            engine = ServingEngine(model, max_steps=123)
        assert engine.max_steps == 123

    def test_legacy_positional_cost_model_warns(self, model):
        reqs = make_workload(model, n=4)
        with pytest.deprecated_call():
            result = run_sequential(model, reqs,
                                    DecodeCostModel(model.config))
        assert result.metrics.num_requests == 4


class TestResults:
    """ServeResult / ClusterResult share the ServingResultBase surface."""

    def test_unknown_request_id_is_descriptive(self, model):
        result = ServingEngine(model).run(make_workload(model, n=4))
        assert isinstance(result, ServeResult)
        with pytest.raises(ValueError, match=r"unknown request id 99"):
            result.output_tokens(99)
        with pytest.raises(ValueError, match=r"0, 1, 2, 3"):
            result.output_tokens(99)

    def test_percentiles_and_errors(self, model):
        result = ServingEngine(model).run(make_workload(model, n=8))
        assert isinstance(result, ServingResultBase)
        p = result.percentiles("ttft")
        assert set(p) == {50.0, 95.0, 99.0}
        assert p[50.0] <= p[95.0] <= p[99.0]
        assert result.percentiles("tpot", qs=(50.0,))[50.0] > 0
        with pytest.raises(ValueError):
            result.percentiles("throughput")

    def test_save_json_roundtrip(self, model, tmp_path):
        import json
        result = ServingEngine(model).run(make_workload(model, n=4))
        path = result.save_json(tmp_path / "serve")
        assert path.suffix == ".json"
        data = json.loads(path.read_text())
        assert data["metrics"]["num_requests"] == 4
        assert len(data["records"]) == 4


class TestPreemptionFairness:
    """Property-style check: youngest-first LIFO preemption terminates.

    Adversarial same-length request pairs arriving together are the
    worst case for victim selection — identical budgets mean every
    tie-break matters, and a victim choice that excludes the grower
    itself livelocks two requests crossing block boundaries in
    lockstep.  ``max_steps`` turns any such livelock into a hard
    failure instead of a hang."""

    @pytest.mark.parametrize("plen,max_new", [(6, 6), (7, 5), (4, 8)])
    def test_adversarial_pairs_terminate(self, model, plen, max_new):
        budget_blocks = -(-(plen + max_new) // 4)       # ceil
        engine = ServingEngine(
            model, ServingConfig(max_batch_size=4, block_size=4,
                                 num_blocks=budget_blocks + 1,
                                 max_steps=4000))
        reqs = [Request(request_id=i, prompt=np.arange(1, plen + 1),
                        max_new_tokens=max_new, arrival_time=0.0)
                for i in range(4)]
        result = engine.run(reqs)
        assert result.metrics.num_requests == 4
        assert result.metrics.preemptions > 0
        for r in reqs:
            assert len(result.outputs[r.request_id]) == max_new

    def test_preempted_pairs_match_generate(self, model):
        """Recompute after preemption still yields exact tokens."""
        engine = ServingEngine(
            model, ServingConfig(max_batch_size=4, block_size=4,
                                 num_blocks=4, max_steps=4000))
        reqs = [Request(request_id=i, prompt=np.arange(3, 9),
                        max_new_tokens=6, arrival_time=0.0)
                for i in range(4)]
        result = engine.run(reqs)
        expected = model.generate(np.arange(3, 9), 6, use_cache=True)[6:]
        for i in range(4):
            np.testing.assert_array_equal(result.outputs[i], expected)


class TestCostModel:
    def test_batching_amortizes_weight_stream(self, model):
        cost = DecodeCostModel(model.config)
        one = cost.decode_step_time(1, 32)
        eight = cost.decode_step_time(8, 8 * 32)
        # 8 requests in one step is far cheaper than 8 separate steps.
        assert eight < 8 * one
        assert eight >= one

    def test_prefill_scales_with_prompt(self, model):
        cost = DecodeCostModel(model.config)
        assert cost.prefill_time(32) > cost.prefill_time(4)


class TestPerfModel:
    def test_small_model_prefers_replicas(self, model):
        result = ServingEngine(model).run(make_workload(model, n=16))
        est = ServingPerfModel().estimate(model.config, result.metrics)
        assert isinstance(est, FrontierServingEstimate)
        assert est.best.tp == 1
        assert est.best.node_tokens_per_s > 0
        assert "recommended" in format_estimate(est)

    def test_tp_pays_comm_tax(self):
        config = preset("llama-6.7b-hf-52k")
        pm = ServingPerfModel()
        t1, c1 = pm.decode_step_time(config, 8, 8 * 512, tp=1)
        t8, c8 = pm.decode_step_time(config, 8, 8 * 512, tp=8)
        assert c1 == 0.0 and c8 > 0.0
        # Sharding still wins on step time for a memory-bound decode.
        assert t8 < t1

    def test_fit_check_gates_replicas(self):
        config = preset("llama-6.7b-hf-52k")  # 13.7 GB bf16: fits TP=1
        pm = ServingPerfModel()
        assert pm.fits(config, tp=1)
        big = ModelConfig(arch="llama", hidden_size=8192, num_layers=80,
                          num_heads=64, vocab_size=52000, max_seq_len=2048)
        assert not pm.fits(big, tp=1)      # ~130 GB bf16
        assert pm.fits(big, tp=8)


class TestGenerateEos:
    """Satellite: GPTModel.generate stop-token support."""

    @pytest.mark.parametrize("use_cache", [False, True])
    def test_eos_truncates_both_paths(self, model, use_cache):
        prompt = np.array([3, 14, 15])
        full = model.generate(prompt, 16, use_cache=use_cache)
        eos = int(full[len(prompt) + 4])   # 5th generated token
        out = model.generate(prompt, 16, use_cache=use_cache, eos_id=eos)
        assert len(out) <= len(full)
        assert int(out[-1]) == eos
        np.testing.assert_array_equal(out, full[:len(out)])

    def test_eos_never_produced_runs_full_length(self, model):
        prompt = np.array([1, 2])
        out = model.generate(prompt, 8, eos_id=-1)
        assert len(out) == 10


class TestEngineLifecycleTrace:
    """Satellite: per-request lifecycle events from the single engine."""

    def run_engine(self, model, n=8):
        engine = ServingEngine(model, ServingConfig(max_batch_size=4,
                                                    num_blocks=32))
        return engine.run(make_workload(model, n=n))

    def test_lanes_cover_every_request_lifecycle(self, model):
        result = self.run_engine(model)
        (lanes,) = result.lanes.values()          # one process: "engine"
        (events,) = lanes.values()                # one replica lane
        stages = {}
        for event in events:
            req, stage = event.name.split("/")
            stages.setdefault(req, set()).add(stage)
        assert len(stages) == len(result.records)
        for seen in stages.values():
            assert {"arrive", "admit", "prefill", "decode",
                    "finish"} <= seen

    def test_spans_match_record_timings(self, model):
        result = self.run_engine(model)
        (events,) = next(iter(result.lanes.values())).values()
        by_record = {r.request_id: r for r in result.records}
        for event in events:
            req_id = int(event.name.split("/")[0][len("req"):])
            record = by_record[req_id]
            if event.category == "decode":
                assert event.start_s == pytest.approx(record.first_token)
                assert event.end_s == pytest.approx(record.finish)
            elif event.category == "finish":
                assert event.start_s == pytest.approx(record.finish)

    def test_save_trace_writes_chrome_json(self, model, tmp_path):
        import json
        result = self.run_engine(model)
        path = result.save_trace(tmp_path / "engine-trace")
        doc = json.loads(path.read_text())
        names = {e["name"] for e in doc["traceEvents"]}
        assert "engine" in {e["args"]["name"] for e in doc["traceEvents"]
                            if e["name"] == "process_name"}
        assert any(n.startswith("req") and n.endswith("/prefill")
                   for n in names)

    def test_trace_is_deterministic_under_seed(self, model):
        a = self.run_engine(model)
        b = self.run_engine(model)
        lane_a = next(iter(a.lanes.values()))
        lane_b = next(iter(b.lanes.values()))
        assert lane_a == lane_b

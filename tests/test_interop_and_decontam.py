"""Tests for tokenizer text-format interop, eval decontamination and
multi-seed few-shot evaluation."""

import numpy as np
import pytest

from repro.data import (AbstractGenerator, check_contamination,
                        decontaminate_corpus)
from repro.evalharness import build_task, evaluate_task_multi_seed
from repro.tokenizers import (BPETokenizer, UnigramTokenizer, export_bpe,
                              export_unigram, import_bpe, import_unigram)
from repro.tokenizers.io import byte_to_unicode

CORPUS = ["the band gap of GaAs is wide and useful",
          "perovskite solar cells improve rapidly today"] * 10


@pytest.fixture(scope="module")
def bpe():
    return BPETokenizer().train(CORPUS, 330)


@pytest.fixture(scope="module")
def unigram():
    return UnigramTokenizer().train(CORPUS, 300)


class TestByteUnicode:
    def test_bijective(self):
        mapping = byte_to_unicode()
        assert len(mapping) == 256
        assert len(set(mapping.values())) == 256

    def test_printable_identity(self):
        mapping = byte_to_unicode()
        assert mapping[ord("a")] == "a"
        assert mapping[ord(" ")] != " "  # space is remapped (GPT-2 style)


class TestBPETextFormat:
    def test_roundtrip_encodings(self, bpe, tmp_path):
        export_bpe(bpe, tmp_path / "tok")
        loaded = import_bpe(tmp_path / "tok")
        for text in ("the band gap", "solar cells", "GaAs αβ"):
            np.testing.assert_array_equal(loaded.encode(text),
                                          bpe.encode(text))
            assert loaded.decode(loaded.encode(text)) == text

    def test_files_written(self, bpe, tmp_path):
        d = export_bpe(bpe, tmp_path / "tok")
        assert (d / "vocab.json").exists()
        assert (d / "merges.txt").exists()
        merges = (d / "merges.txt").read_text().strip().splitlines()
        assert len(merges) == len(bpe.merges)

    def test_vocab_unique_strings(self, bpe, tmp_path):
        import json
        d = export_bpe(bpe, tmp_path / "tok")
        vocab = json.loads((d / "vocab.json").read_text())
        assert len(vocab) == bpe.vocab_size

    def test_missing_files_rejected(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            import_bpe(tmp_path)

    def test_corrupt_merges_rejected(self, bpe, tmp_path):
        d = export_bpe(bpe, tmp_path / "tok")
        (d / "merges.txt").write_text("1 2 3\n")
        with pytest.raises(ValueError):
            import_bpe(d)

    def test_untrained_export_rejected(self, tmp_path):
        with pytest.raises(RuntimeError):
            export_bpe(BPETokenizer(), tmp_path / "x")


class TestUnigramTextFormat:
    def test_roundtrip_encodings(self, unigram, tmp_path):
        export_unigram(unigram, tmp_path / "spm")
        loaded = import_unigram(tmp_path / "spm")
        for text in ("the band gap", "solar cells improve"):
            np.testing.assert_array_equal(loaded.encode(text),
                                          unigram.encode(text))

    def test_pieces_file_sorted_by_id(self, unigram, tmp_path):
        d = export_unigram(unigram, tmp_path / "spm")
        lines = (d / "pieces.tsv").read_text().strip().splitlines()
        assert len(lines) == len(unigram.pieces)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            import_unigram(tmp_path)


class TestDecontamination:
    @pytest.fixture(scope="class")
    def corpus(self):
        return [d.text for d in AbstractGenerator(seed=0).sample(40)]

    def test_clean_eval_set_passes(self, corpus):
        evals = ["what is the chemical symbol for gold in metallurgy",
                 "explain the general theory of relativity please"]
        report = check_contamination(evals, corpus)
        assert report.clean
        assert report.contamination_rate == 0.0

    def test_leaked_item_flagged(self, corpus):
        evals = ["an unrelated question about biology experiments",
                 corpus[5]]  # verbatim leak
        report = check_contamination(evals, corpus)
        assert 1 in report.contaminated
        assert 0 not in report.contaminated

    def test_partial_leak_threshold(self, corpus):
        half = " ".join(corpus[3].split()[:len(corpus[3].split()) // 2])
        report_strict = check_contamination([half], corpus, threshold=0.9)
        report_loose = check_contamination([half], corpus, threshold=0.3)
        assert not report_strict.contaminated or report_loose.contaminated

    def test_decontaminate_corpus_removes_source_doc(self, corpus):
        evals = [corpus[7]]
        clean, removed = decontaminate_corpus(corpus, evals)
        assert removed >= 1
        assert corpus[7] not in clean

    def test_threshold_validated(self, corpus):
        with pytest.raises(ValueError):
            check_contamination(["x"], corpus, threshold=0.0)


class TestMultiSeedFewshot:
    class ConstantModel:
        """Always prefers the shortest continuation (deterministic)."""

        def loglikelihood(self, context, continuation):
            return -float(len(continuation)), False

    class WordTokenizer:
        def encode(self, text, add_special=False):
            return np.arange(len(text.split()) + 1)

    def test_aggregates_over_seeds(self):
        task = build_task("sciq", n_questions=12, n_fewshot=8)
        result = evaluate_task_multi_seed(
            self.ConstantModel(), self.WordTokenizer(), task, shots=3,
            fewshot_seeds=(0, 1, 2))
        assert result.shots == 3
        assert 0.0 <= result.accuracy <= 1.0
        assert result.stderr >= 0.0

    def test_validations(self):
        task = build_task("sciq", n_questions=5, n_fewshot=4)
        with pytest.raises(ValueError):
            evaluate_task_multi_seed(self.ConstantModel(),
                                     self.WordTokenizer(), task, shots=0)
        with pytest.raises(ValueError):
            evaluate_task_multi_seed(self.ConstantModel(),
                                     self.WordTokenizer(), task, shots=2,
                                     fewshot_seeds=())

    def test_single_seed_matches_plain_eval(self):
        from repro.evalharness import evaluate_task
        task = build_task("piqa", n_questions=10, n_fewshot=6)
        model, tok = self.ConstantModel(), self.WordTokenizer()
        multi = evaluate_task_multi_seed(model, tok, task, shots=2,
                                         fewshot_seeds=(7,))
        single = evaluate_task(model, tok, task, shots=2, fewshot_seed=7)
        assert multi.accuracy == single.accuracy

"""Tests for the study orchestration layer: grid search, recipes,
evolution data, observations, reporting."""

import numpy as np
import pytest

from repro.core import (BRANCHES, ComparativeStudy, FIG4_GRID, MAJOR_RELEASES,
                        ObservationCheck, StudyConfig, TABLE_III, check_all,
                        dominant_branch, flash_boost_table, format_bars,
                        format_heatmap, format_series, format_table,
                        observation_1, observation_2, observation_3,
                        observation_4, recipe_for, releases_per_year,
                        run_grid_search)
from repro.core.evolution import ModelRelease


class TestArchitectureSearch:
    @pytest.fixture(scope="class")
    def heatmap(self):
        return run_grid_search("neox")

    def test_grid_has_20_cells_8_eligible(self):
        assert len(FIG4_GRID) == 20
        assert sum(c.eligible for c in FIG4_GRID) == 8

    def test_fig4_best_cell_is_24x2304(self, heatmap):
        best = heatmap.best_cell
        assert (best.num_layers, best.hidden_size) == (24, 2304)
        assert best.eligible

    def test_fig4_range_58_to_76(self, heatmap):
        """Paper: performance varies from 58 to 76 TFLOPS."""
        assert 50 < heatmap.worst_tflops < 62
        assert 72 < heatmap.best_tflops < 80

    def test_eligible_labeled_a_to_h(self, heatmap):
        labels = [label for label, _, _ in heatmap.eligible_cells()]
        assert labels == list("ABCDEFGH")

    def test_eligible_among_top_performers(self, heatmap):
        assert heatmap.eligible_outperform_rate() >= 0.6

    def test_as_matrix_round_trip(self, heatmap):
        layers, hiddens, matrix = heatmap.as_matrix()
        assert len(layers) == 5
        assert np.isfinite(matrix).sum() == 20

    def test_flash_boost_table(self):
        rows = flash_boost_table("neox")
        assert len(rows) == 8
        v1 = np.mean([r["boost_v1"] for r in rows])
        v2 = np.mean([r["boost_v2"] for r in rows])
        assert 0.10 < v1 < 0.18   # paper: ~14%
        assert 0.15 < v2 < 0.23   # paper: ~19%
        assert v2 > v1

    def test_flash_on_ineligible_cell_rejected(self):
        bad = [c for c in FIG4_GRID if not c.eligible][:1]
        with pytest.raises(ValueError):
            run_grid_search("neox", flash=1, grid=tuple(bad))


class TestRecipes:
    def test_table_iii_rows(self):
        assert len(TABLE_III) == 3
        adam = recipe_for("1.7B", "adam")
        assert adam.beta2 == 0.95
        assert adam.learning_rate == 2e-4
        assert adam.batch_tokens == 1e6
        lamb67 = recipe_for("6.7B", "lamb")
        assert lamb67.learning_rate == 0.006
        assert lamb67.beta2 == 0.999

    def test_unknown_recipe(self):
        with pytest.raises(KeyError):
            recipe_for("13B", "adam")

    def test_schedule_properties(self):
        r = recipe_for("1.7B", "lamb")
        sched = r.schedule()
        assert r.total_steps == 3750  # 15e9 / 4e6
        assert sched(r.total_steps - 1) == pytest.approx(0.001, abs=1e-4)

    def test_shared_constants(self):
        for r in TABLE_III:
            assert r.weight_decay == 0.1
            assert r.precision == "bf16"
            assert r.warmup_fraction == 0.01


class TestEvolution:
    def test_fig1_decoder_dominates_since_2021(self):
        for year in (2021, 2022, 2023):
            assert dominant_branch(year) == "decoder-only"

    def test_fig1_encoder_era_2018_2019(self):
        assert dominant_branch(2019) == "encoder-only"

    def test_fig1_encoder_decoder_flat(self):
        table = releases_per_year()
        counts = [table[y]["encoder-decoder"] for y in sorted(table)]
        assert max(counts) - min(counts) <= 2  # "stayed about the same"

    def test_releases_cover_all_years(self):
        assert set(releases_per_year()) == {2018, 2019, 2020, 2021, 2022,
                                            2023}

    def test_bad_branch_rejected(self):
        with pytest.raises(ValueError):
            ModelRelease("X", 2020, "diffusion")

    def test_unknown_year(self):
        with pytest.raises(KeyError):
            dominant_branch(2017)

    def test_paper_models_present(self):
        names = {r.name for r in MAJOR_RELEASES}
        assert {"GPT-NeoX", "LLaMA", "BERT", "GPT-3", "T5"} <= names


class TestObservations:
    def test_observations_1_to_3_hold(self):
        checks = check_all()
        assert [c.number for c in checks] == [1, 2, 3]
        for c in checks:
            assert c.holds, f"Observation {c.number}: {c.evidence}"

    def test_observation_evidence_populated(self):
        c = observation_1()
        assert c.evidence["fraction_of_peak"] > 0.43

    def test_observation_4_interface(self):
        accs = {"neox": {"sciq": 0.6, "piqa": 0.55},
                "llama": {"sciq": 0.58, "piqa": 0.57}}
        losses = {"neox": 2.5, "llama": 2.4}
        c = observation_4(accs, losses)
        assert c.holds
        assert c.number == 4

    def test_observation_4_validates_inputs(self):
        with pytest.raises(ValueError):
            observation_4({"a": {"t": 0.5}}, {"b": 1.0})
        with pytest.raises(ValueError):
            observation_4({"a": {"t": 0.5}}, {"a": 1.0})


class TestReporting:
    def test_format_table(self):
        out = format_table(["model", "mae"], [["cgcnn", 0.388],
                                              ["megnet", 0.33]], title="T5")
        assert "cgcnn" in out and "0.388" in out and "T5" in out

    def test_format_heatmap(self):
        m = np.array([[1.0, np.nan], [2.0, 3.0]])
        out = format_heatmap([16, 24], [[2048, 2304], [2048, 2304]], m)
        assert "n/a" in out and "L=16" in out

    def test_format_series(self):
        out = format_series(np.array([8, 64]),
                            {"dp": np.array([80.0, 75.0])}, x_label="gpus")
        assert "gpus" in out and "dp" in out

    def test_format_bars(self):
        out = format_bars({"sciq": 0.8, "piqa": 0.4})
        assert out.count("#") > 10
        with pytest.raises(ValueError):
            format_bars({})


class TestStudyPipelineStages:
    """Cheap per-stage checks; the full pipeline runs in the benchmarks."""

    @pytest.fixture(scope="class")
    def study(self):
        return ComparativeStudy(StudyConfig(
            train_steps=8, eval_questions=6, n_materials=60, gnn_epochs=10,
            corpus_scale=1e-5))

    def test_corpus_stage(self, study):
        corpus, reports = study.build_corpus()
        assert corpus
        assert {r.source for r in reports} == {"CORE", "MAG", "Aminer",
                                               "SCOPUS"}
        assert all(r.precision > 0.8 for r in reports)

    def test_tokenizer_stage(self, study):
        corpus, _ = study.build_corpus()
        toks = study.train_tokenizers(corpus)
        assert set(toks) == {"hf", "spm"}
        text = corpus[0].text[:40]
        assert toks["hf"].decode(toks["hf"].encode(text)) == text

    def test_pretrain_and_eval_stages(self, study):
        corpus, _ = study.build_corpus()
        toks = study.train_tokenizers(corpus)
        models, histories = study.pretrain(corpus, toks)
        assert set(models) == {"neox", "llama"}
        for h in histories.values():
            assert len(h.train_loss) == 8
        reports = study.evaluate(models, toks)
        for rep in reports.values():
            assert 0.0 <= rep.mean_accuracy(0) <= 1.0


class TestObservation5:
    def test_holds_with_paper_shaped_inputs(self):
        from repro.core import observation_5
        from repro.matsci import EmbeddingDiagnostics
        gpt = EmbeddingDiagnostics("gpt", mean_distance=0.6,
                                   mean_cosine=0.8, cosine_std=0.1,
                                   silhouette=0.4)
        bert = EmbeddingDiagnostics("bert", mean_distance=1.4,
                                    mean_cosine=0.0, cosine_std=0.05,
                                    silhouette=0.3)
        check = observation_5(gpt, bert, mae_structure_only=0.358,
                              mae_fused=0.347)
        assert check.number == 5
        assert check.holds
        assert check.evidence["mae_fused"] < \
            check.evidence["mae_structure_only"]

    def test_violated_when_fusion_hurts(self):
        from repro.core import observation_5
        from repro.matsci import EmbeddingDiagnostics
        gpt = EmbeddingDiagnostics("gpt", 0.6, 0.8, 0.1, 0.4)
        bert = EmbeddingDiagnostics("bert", 1.4, 0.0, 0.05, 0.3)
        check = observation_5(gpt, bert, mae_structure_only=0.30,
                              mae_fused=0.35)
        assert not check.holds

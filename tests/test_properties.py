"""Cross-module property-based tests (hypothesis).

These pin down invariants that must hold for *any* input, not just the
paper's configurations: conservation laws in the collectives, bounds and
monotonicity in the performance/memory models, and numerical safety of
the optimizers.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontier import MemoryModel, RooflineModel
from repro.models import ModelConfig, Parameter
from repro.parallel import (CollectiveModel, GroupTopology, ParallelConfig,
                            TrainingSimulator, build_schedule)
from repro.training import Adam, CosineWarmupSchedule, LAMB
from repro.training.precision import cast

ROOFLINE = RooflineModel()
MEMORY = MemoryModel()
COLLECTIVES = CollectiveModel()
SIM = TrainingSimulator()


def valid_config(hidden_mult, layers, heads_pow):
    heads = 2 ** heads_pow
    hidden = heads * 8 * hidden_mult
    return ModelConfig(arch="neox", hidden_size=hidden, num_layers=layers,
                       num_heads=heads, vocab_size=8192, max_seq_len=4096)


class TestRooflineProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(2, 24), st.integers(2, 32), st.integers(1, 4))
    def test_throughput_never_exceeds_peak(self, hm, layers, hp):
        cfg = valid_config(hm, layers, hp)
        v = ROOFLINE.achieved_tflops(cfg, seq_len=1024, micro_batch=2)
        assert 0 < v < ROOFLINE.gcd.peak_tflops

    @settings(max_examples=15, deadline=None)
    @given(st.integers(2, 16), st.integers(1, 4))
    def test_step_time_monotone_in_depth(self, hm, hp):
        shallow = valid_config(hm, 4, hp)
        deep = valid_config(hm, 8, hp)
        assert ROOFLINE.step_time(deep, 1024, 2) > \
            ROOFLINE.step_time(shallow, 1024, 2) * 1.5

    @settings(max_examples=15, deadline=None)
    @given(st.integers(2, 16), st.integers(2, 16), st.integers(1, 4))
    def test_flash_never_slower(self, hm, layers, hp):
        cfg = valid_config(hm, layers, hp)
        assert ROOFLINE.achieved_tflops(cfg, flash=2) >= \
            ROOFLINE.achieved_tflops(cfg, flash=0) * 0.98


class TestMemoryProperties:
    @settings(max_examples=20, deadline=None)
    @given(st.sampled_from([1024, 2048, 4096, 8192]),
           st.integers(1, 8), st.sampled_from([0, 1]))
    def test_memory_monotone_in_seq_and_batch(self, seq, batch, flash):
        cfg = valid_config(8, 8, 3)
        small = MEMORY.breakdown(cfg, seq_len=seq, micro_batch=batch,
                                 flash=flash).total
        bigger_seq = MEMORY.breakdown(cfg, seq_len=2 * seq,
                                      micro_batch=batch, flash=flash).total
        bigger_batch = MEMORY.breakdown(cfg, seq_len=seq,
                                        micro_batch=batch + 1,
                                        flash=flash).total
        assert bigger_seq > small
        assert bigger_batch > small

    @settings(max_examples=20, deadline=None)
    @given(st.sampled_from([2, 4, 8, 16]), st.sampled_from([1, 2, 3]))
    def test_sharding_never_increases_states(self, dp, stage):
        cfg = valid_config(8, 8, 3)
        base = MEMORY.breakdown(cfg, dp=dp, zero_stage=0).model_states
        sharded = MEMORY.breakdown(cfg, dp=dp, zero_stage=stage).model_states
        deeper = MEMORY.breakdown(cfg, dp=2 * dp,
                                  zero_stage=stage).model_states
        assert sharded <= base
        assert deeper <= sharded


class TestCollectiveProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(10, 30), st.sampled_from([2, 8, 64, 256]))
    def test_allreduce_monotone_in_bytes(self, log_bytes, p):
        group = GroupTopology.place(p)
        small = COLLECTIVES.allreduce(2 ** log_bytes, group).seconds
        large = COLLECTIVES.allreduce(2 ** (log_bytes + 1), group).seconds
        assert large > small

    @settings(max_examples=30, deadline=None)
    @given(st.integers(16, 28))
    def test_allreduce_decomposes(self, log_bytes):
        """allreduce == reduce-scatter + allgather at any size."""
        group = GroupTopology(8, "node")
        nbytes = 2 ** log_bytes
        ar = COLLECTIVES.allreduce(nbytes, group).seconds
        rs = COLLECTIVES.reduce_scatter(nbytes, group).seconds
        ag = COLLECTIVES.allgather(nbytes, group).seconds
        assert ar == pytest.approx(rs + ag, rel=1e-9)

    @settings(max_examples=20, deadline=None)
    @given(st.sampled_from([8, 16, 64, 128, 256]))
    def test_exposed_comm_never_exceeds_total(self, dp):
        cfg = valid_config(16, 8, 3)
        for pc in (ParallelConfig(dp=dp),
                   ParallelConfig(dp=dp, zero_stage=1)):
            sched = build_schedule(cfg, pc, COLLECTIVES, 1024, 2048)
            assert 0 <= sched.exposed_seconds <= sched.total_seconds + 1e-12


class TestSimulatorProperties:
    @settings(max_examples=10, deadline=None)
    @given(st.sampled_from([8, 16, 64, 256]))
    def test_profile_components_nonnegative(self, gpus):
        cfg = valid_config(16, 8, 3)
        for pc in (ParallelConfig(dp=gpus),
                   ParallelConfig(dp=gpus // 2, tp=2),
                   ParallelConfig(dp=gpus // 2, pp=2)):
            prof = SIM.step(cfg, pc, seq_len=1024, per_device_seqs=2)
            assert prof.compute_s > 0
            assert prof.comm_exposed_s >= 0
            assert prof.io_s >= 0
            assert prof.bubble_s >= 0

    @settings(max_examples=8, deadline=None)
    @given(st.sampled_from([16, 64, 256]))
    def test_more_gpus_never_faster_per_gcd(self, gpus):
        """Weak scaling: per-GCD throughput at n GPUs <= at 8 GPUs."""
        cfg = valid_config(16, 8, 3)
        base = SIM.per_gcd_tflops(cfg, ParallelConfig(dp=8))
        scaled = SIM.per_gcd_tflops(cfg, ParallelConfig(dp=gpus))
        assert scaled <= base + 1e-9


class TestOptimizerProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.floats(1e-6, 1e3), st.integers(1, 20))
    def test_adam_finite_under_scaled_grads(self, scale, steps):
        p = Parameter(np.ones(8))
        opt = Adam([p], lr=1e-2, weight_decay=0.0)
        rng = np.random.default_rng(0)
        for _ in range(steps):
            p.grad = scale * rng.normal(size=8)
            opt.step()
        assert np.isfinite(p.data).all()

    @settings(max_examples=25, deadline=None)
    @given(st.floats(1e-6, 1e3))
    def test_lamb_step_bounded_by_trust_clip(self, scale):
        p = Parameter(np.full(8, 2.0))
        opt = LAMB([p], lr=1e-2, weight_decay=0.0, trust_clip=(0.0, 10.0))
        p.grad = scale * np.ones(8)
        before = p.data.copy()
        opt.step()
        step_norm = np.linalg.norm(p.data - before)
        # ||Δw|| = lr * trust * ||r|| and trust = ||w||/||r|| (clipped),
        # so the step can never exceed lr * clip_hi * ||w_before||-scale.
        assert step_norm <= 1e-2 * 10.0 * np.linalg.norm(before) + 1e-9


class TestScheduleProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.floats(1e-5, 1.0), st.integers(2, 5000), st.integers(0, 4999))
    def test_lr_always_within_bounds(self, peak, total, step):
        sched = CosineWarmupSchedule(peak, total)
        lr = sched(min(step, total * 2))
        assert 0 < lr <= peak + 1e-12

    @settings(max_examples=20, deadline=None)
    @given(st.floats(1e-4, 1.0), st.integers(10, 1000))
    def test_lr_ends_at_floor(self, peak, total):
        sched = CosineWarmupSchedule(peak, total)
        assert sched(10 * total) == pytest.approx(sched.final_lr, rel=1e-6)


class TestPrecisionProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.floats(1e-3, 1e4), st.sampled_from([-1.0, 1.0]),
           st.sampled_from(["fp32", "bf16", "fp16"]))
    def test_cast_relative_error_bounded(self, mag, sign, dtype):
        """Within each format's *normal* range the relative rounding
        error is bounded by half an ulp (subnormals flush, hence the
        magnitude floor)."""
        v = sign * mag
        rounded = cast(np.array([v]), dtype)[0]
        rel = abs(rounded - v) / abs(v)
        bound = {"fp32": 1e-6, "bf16": 2 ** -8, "fp16": 2 ** -10}[dtype]
        assert rel <= bound

    def test_cast_zero_exact(self):
        for dtype in ("fp32", "bf16", "fp16"):
            assert cast(np.array([0.0]), dtype)[0] == 0.0

"""Tests for the domain-specific static-analysis pass (repro.analysis)."""

import json

import pytest

from repro.analysis import (Finding, all_checkers, collect_suppressions,
                            format_json, format_text, lint_paths,
                            lint_source, load_baseline, resolve_rules,
                            split_baselined, write_baseline)
from repro.cli import main

ALL_RULES = resolve_rules(None)


def findings_for(source, path="src/repro/serving/mod.py", rules=None):
    return lint_source(source, path, rules or ALL_RULES)


def rules_of(findings):
    return {f.rule for f in findings}


# ----------------------------------------------------------------------
# One positive + one negative snippet per rule.
# ----------------------------------------------------------------------

RULE_SNIPPETS = [
    # (rule, path, bad snippet, good snippet)
    ("RPR001", "src/repro/serving/engine.py",
     "import time\n\ndef step():\n    return time.perf_counter()\n",
     "def step(clock):\n    return clock + 0.25\n"),
    ("RPR001", "src/repro/parallel/sim.py",
     "import numpy as np\n\ndef jitter():\n    return np.random.rand()\n",
     "import numpy as np\n\ndef jitter(seed):\n"
     "    return np.random.default_rng(seed).random()\n"),
    ("RPR001", "src/repro/frontier/power.py",
     "import random\n\ndef noise():\n    return random.random()\n",
     "import random\n\ndef noise(seed):\n"
     "    return random.Random(seed).random()\n"),
    ("RPR002", "src/repro/models/layers.py",
     "def fuse(p, q):\n    p.data += q.data\n",
     "def fuse(p, q):\n    return p + q\n"),
    ("RPR002", "src/repro/training/trainer.py",
     "def clip(p):\n    p.grad[:] = 0.0\n",
     "class Opt:\n    def __init__(self, p):\n"
     "        p.data = p.data * 1.0\n"),
    ("RPR002", "src/repro/models/ops.py",
     "def build(tensors):\n"
     "    for t in tensors:\n"
     "        def backward(out):\n"
     "            return t * out\n",
     "def build(tensors):\n"
     "    for t in tensors:\n"
     "        def backward(out, t=t):\n"
     "            return t * out\n"),
    ("RPR003", "src/repro/frontier/roofline.py",
     "def traffic(weight_bytes, kv_gb):\n"
     "    return weight_bytes + kv_gb\n",
     "GB = 1 << 30\n\ndef traffic(weight_bytes, kv_gb):\n"
     "    return weight_bytes + kv_gb * GB\n"),
    ("RPR003", "src/repro/serving/metrics.py",
     "def slow(step_us, budget_ms):\n    return step_us > budget_ms\n",
     "def slow(step_us, budget_us):\n    return step_us > budget_us\n"),
    ("RPR004", "src/repro/serving/bench.py",
     '__all__ = ["build"]\n\ndef build(model, cfg):\n'
     "    return ServingEngine(model, max_steps=10)\n",
     '__all__ = ["build"]\n\ndef build(model, cfg):\n'
     "    return ServingEngine(model, cfg)\n"),
    ("RPR004", "src/repro/core/api.py",
     '__all__ = ["missing_name"]\n',
     '__all__ = ["thing"]\n\ndef thing():\n    return 1\n'),
    ("RPR004", "src/repro/core/missing.py",
     "def thing():\n    return 1\n",
     "def _thing():\n    return 1\n"),
    ("RPR004", "src/repro/core/util.py",
     '__all__ = []\n\ndef merge(a, seen=[]):\n'
     "    seen.append(a)\n    return seen\n",
     "def _merge(a, seen=None):\n    return (seen or []) + [a]\n"),
    ("RPR005", "src/repro/frontier/memory.py",
     "def check(a, b):\n    return a / b == 0.5\n",
     "def check(a, b):\n    return abs(a / b - 0.5) < 1e-9\n"),
    ("RPR006", "src/repro/models/ckpt.py",
     "def load(path):\n"
     "    try:\n        return open(path)\n"
     "    except:\n        pass\n",
     "def load(path):\n"
     "    try:\n        return open(path)\n"
     "    except OSError as exc:\n"
     "        raise ValueError(f'bad path: {exc}') from exc\n"),
    ("RPR006", "src/repro/serving/router.py",
     "def poll(replicas):\n"
     "    for r in replicas:\n"
     "        try:\n            r.ping()\n"
     "        except (OSError, Exception):\n            continue\n",
     "def poll(replicas):\n"
     "    for r in replicas:\n"
     "        try:\n            r.ping()\n"
     "        except Exception as exc:\n"
     "            r.mark_unhealthy(exc)\n"),
]


class TestRuleCatalog:
    @pytest.mark.parametrize("rule,path,bad,good", RULE_SNIPPETS,
                             ids=[f"{r}-{p.rsplit('/', 1)[1]}"
                                  for r, p, _, _ in RULE_SNIPPETS])
    def test_rule_fires_on_bad_and_not_on_good(self, rule, path, bad,
                                               good):
        assert rule in rules_of(findings_for(bad, path))
        assert rule not in rules_of(findings_for(good, path))

    def test_no_rule_is_dead(self):
        covered = {r for r, _, _, _ in RULE_SNIPPETS}
        assert covered == set(all_checkers())

    def test_findings_carry_location_and_severity(self):
        found = findings_for(
            "import time\n\ndef f():\n    return time.time()\n")
        (finding,) = [f for f in found if f.rule == "RPR001"]
        assert finding.line == 4
        assert finding.col > 0
        assert finding.severity == "error"
        assert "time.time" in finding.message

    def test_scoping_keeps_simulation_rules_out_of_other_dirs(self):
        source = "import time\n\ndef f():\n    return time.time()\n"
        assert "RPR001" in rules_of(
            findings_for(source, "src/repro/serving/x.py"))
        assert "RPR001" not in rules_of(
            findings_for(source, "src/repro/tokenizers/x.py"))

    def test_float_equality_skips_test_files(self):
        source = "def f(a, b):\n    return a / b == 0.5\n"
        assert "RPR005" not in rules_of(
            findings_for(source, "tests/test_memory.py"))

    def test_parse_error_is_reported_not_raised(self):
        found = findings_for("def broken(:\n")
        assert rules_of(found) == {"RPR000"}

    def test_resolve_rules_subset_and_unknown(self):
        subset = resolve_rules("RPR001,RPR003")
        assert [c.rule for c in subset] == ["RPR001", "RPR003"]
        with pytest.raises(ValueError, match="unknown rule"):
            resolve_rules("RPR999")


class TestSuppressions:
    BAD = ("import time\n\ndef f():\n"
           "    return time.time()  # repro: ignore[RPR001] virtual\n")

    def test_ignore_comment_suppresses_the_rule(self):
        assert "RPR001" not in rules_of(findings_for(self.BAD))

    def test_wildcard_suppresses_everything(self):
        source = self.BAD.replace("RPR001", "*")
        assert "RPR001" not in rules_of(findings_for(source))

    def test_other_rule_id_does_not_suppress(self):
        source = self.BAD.replace("RPR001", "RPR004")
        found = rules_of(findings_for(source))
        assert "RPR001" in found

    def test_unused_suppression_is_reported(self):
        source = "def _f():\n    return 1  # repro: ignore[RPR001]\n"
        found = findings_for(source)
        assert rules_of(found) == {"RPR000"}
        assert "unused suppression" in found[0].message

    def test_string_literals_are_not_suppressions(self):
        sheet = collect_suppressions(
            's = "# repro: ignore[RPR001]"\n')
        assert not sheet.suppresses(1, "RPR001")


class TestBaseline:
    def test_round_trip(self, tmp_path):
        findings = [Finding(path="src/x.py", line=3, col=1,
                            rule="RPR001", severity="error",
                            message="wall-clock call time.time()")]
        path = write_baseline(findings, tmp_path / "base.json")
        fingerprints = load_baseline(path)
        fresh, known = split_baselined(findings, fingerprints)
        assert fresh == [] and known == findings

    def test_baseline_matching_ignores_line_moves(self, tmp_path):
        original = Finding(path="src/x.py", line=3, col=1, rule="RPR001",
                           severity="error", message="m")
        moved = Finding(path="src/x.py", line=30, col=5, rule="RPR001",
                        severity="error", message="m")
        fingerprints = load_baseline(
            write_baseline([original], tmp_path / "b.json"))
        fresh, known = split_baselined([moved], fingerprints)
        assert fresh == [] and known == [moved]

    def test_unknown_version_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(ValueError, match="baseline version"):
            load_baseline(path)


def write_tree(tmp_path, bad=True):
    pkg = tmp_path / "src" / "repro" / "serving"
    pkg.mkdir(parents=True)
    body = "import time\n\ndef _f():\n    return time.time()\n" if bad \
        else "def _f(clock):\n    return clock\n"
    (pkg / "mod.py").write_text(body)
    return tmp_path / "src"


class TestRunnerAndOutput:
    def test_lint_paths_walks_directories(self, tmp_path):
        root = write_tree(tmp_path)
        report = lint_paths([root], ALL_RULES)
        assert report.checked_files == 1
        assert report.exit_code == 1
        assert rules_of(report.findings) == {"RPR001"}

    def test_json_schema(self, tmp_path):
        report = lint_paths([write_tree(tmp_path)], ALL_RULES)
        doc = json.loads(format_json(report))
        assert doc["version"] == 1
        assert doc["checked_files"] == 1
        assert doc["exit_code"] == 1
        assert set(doc["rules"]) == set(all_checkers())
        (entry,) = doc["findings"]
        assert set(entry) == {"path", "line", "col", "rule", "severity",
                              "message"}
        assert entry["rule"] == "RPR001"

    def test_text_format_lists_findings_and_summary(self, tmp_path):
        report = lint_paths([write_tree(tmp_path)], ALL_RULES)
        text = format_text(report)
        assert "RPR001" in text and "1 finding(s)" in text
        clean = lint_paths([write_tree(tmp_path / "ok", bad=False)],
                           ALL_RULES)
        assert format_text(clean).startswith("clean:")

    def test_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            lint_paths(["/no/such/dir"], ALL_RULES)


class TestLintCLI:
    def test_exit_codes_clean_dirty_usage(self, tmp_path, capsys):
        dirty = write_tree(tmp_path)
        assert main(["lint", str(dirty)]) == 1
        clean = write_tree(tmp_path / "ok", bad=False)
        assert main(["lint", str(clean)]) == 0
        assert main(["lint", str(tmp_path / "absent")]) == 2
        assert main(["lint", str(clean), "--rules", "RPR999"]) == 2
        capsys.readouterr()

    def test_json_output_and_report_file(self, tmp_path, capsys):
        root = write_tree(tmp_path)
        out_file = tmp_path / "report.json"
        code = main(["lint", str(root), "--format", "json",
                     "--output", str(out_file)])
        assert code == 1
        stdout = capsys.readouterr().out
        assert json.loads(stdout)["findings"]
        assert json.loads(out_file.read_text())["exit_code"] == 1

    def test_baseline_workflow_end_to_end(self, tmp_path, capsys):
        root = write_tree(tmp_path)
        base = tmp_path / "baseline.json"
        assert main(["lint", str(root), "--write-baseline",
                     str(base)]) == 0
        # Accepted findings no longer fail...
        assert main(["lint", str(root), "--baseline", str(base)]) == 0
        out = capsys.readouterr().out
        assert "baselined" in out
        # ...but a new finding alongside them still does.
        extra = root / "repro" / "serving" / "new.py"
        extra.write_text("import time\nT0 = time.time()\n")
        assert main(["lint", str(root), "--baseline", str(base)]) == 1

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in all_checkers():
            assert rule in out

    def test_repo_tree_is_clean_against_shipped_baseline(self):
        # The dogfooding guarantee: `repro lint src/` exits 0 as shipped.
        assert main(["lint", "src", "--baseline",
                     "lint-baseline.json"]) == 0


class TestDogfood:
    def test_shipped_baseline_is_empty(self):
        assert load_baseline("lint-baseline.json") == set()

"""Tests for the domain-specific static-analysis pass (repro.analysis)."""

import ast
import json
import subprocess
from pathlib import Path

import pytest

from repro.analysis import (ApiHygieneChecker, ASTCache,
                            AutogradContractChecker, DeadExportChecker,
                            DeprecatedReachChecker,
                            DeterminismTaintChecker,
                            ExceptionHygieneChecker, Finding,
                            FloatEqualityChecker, Liveness, ProjectIndex,
                            ReachingDefinitions, ResourceLeakChecker,
                            UnitsHygieneChecker, VirtualClockChecker,
                            all_checkers, build_call_graph, build_cfg,
                            collect_suppressions, format_json, format_text,
                            function_defs, lint_paths, lint_source,
                            load_baseline, may_raise, module_name_for,
                            resolve_rules, solve, split_baselined,
                            write_baseline)
from repro.analysis.callgraph import resolve_call
from repro.cli import main

ALL_RULES = resolve_rules(None)


def findings_for(source, path="src/repro/serving/mod.py", rules=None):
    return lint_source(source, path, rules or ALL_RULES)


def rules_of(findings):
    return {f.rule for f in findings}


# ----------------------------------------------------------------------
# One positive + one negative snippet per rule.
# ----------------------------------------------------------------------

RULE_SNIPPETS = [
    # (rule, path, bad snippet, good snippet)
    ("RPR001", "src/repro/serving/engine.py",
     "import time\n\ndef step():\n    return time.perf_counter()\n",
     "def step(clock):\n    return clock + 0.25\n"),
    ("RPR001", "src/repro/parallel/sim.py",
     "import numpy as np\n\ndef jitter():\n    return np.random.rand()\n",
     "import numpy as np\n\ndef jitter(seed):\n"
     "    return np.random.default_rng(seed).random()\n"),
    ("RPR001", "src/repro/frontier/power.py",
     "import random\n\ndef noise():\n    return random.random()\n",
     "import random\n\ndef noise(seed):\n"
     "    return random.Random(seed).random()\n"),
    ("RPR002", "src/repro/models/layers.py",
     "def fuse(p, q):\n    p.data += q.data\n",
     "def fuse(p, q):\n    return p + q\n"),
    ("RPR002", "src/repro/training/trainer.py",
     "def clip(p):\n    p.grad[:] = 0.0\n",
     "class Opt:\n    def __init__(self, p):\n"
     "        p.data = p.data * 1.0\n"),
    ("RPR002", "src/repro/models/ops.py",
     "def build(tensors):\n"
     "    for t in tensors:\n"
     "        def backward(out):\n"
     "            return t * out\n",
     "def build(tensors):\n"
     "    for t in tensors:\n"
     "        def backward(out, t=t):\n"
     "            return t * out\n"),
    ("RPR003", "src/repro/frontier/roofline.py",
     "def traffic(weight_bytes, kv_gb):\n"
     "    return weight_bytes + kv_gb\n",
     "GB = 1 << 30\n\ndef traffic(weight_bytes, kv_gb):\n"
     "    return weight_bytes + kv_gb * GB\n"),
    ("RPR003", "src/repro/serving/metrics.py",
     "def slow(step_us, budget_ms):\n    return step_us > budget_ms\n",
     "def slow(step_us, budget_us):\n    return step_us > budget_us\n"),
    ("RPR004", "src/repro/serving/bench.py",
     '__all__ = ["build"]\n\ndef build(model, cfg):\n'
     "    return ServingEngine(model, max_steps=10)\n",
     '__all__ = ["build"]\n\ndef build(model, cfg):\n'
     "    return ServingEngine(model, cfg)\n"),
    ("RPR004", "src/repro/core/api.py",
     '__all__ = ["missing_name"]\n',
     '__all__ = ["thing"]\n\ndef thing():\n    return 1\n'),
    ("RPR004", "src/repro/core/missing.py",
     "def thing():\n    return 1\n",
     "def _thing():\n    return 1\n"),
    ("RPR004", "src/repro/core/util.py",
     '__all__ = []\n\ndef merge(a, seen=[]):\n'
     "    seen.append(a)\n    return seen\n",
     "def _merge(a, seen=None):\n    return (seen or []) + [a]\n"),
    ("RPR005", "src/repro/frontier/memory.py",
     "def check(a, b):\n    return a / b == 0.5\n",
     "def check(a, b):\n    return abs(a / b - 0.5) < 1e-9\n"),
    ("RPR006", "src/repro/models/ckpt.py",
     "def load(path):\n"
     "    try:\n        return open(path)\n"
     "    except:\n        pass\n",
     "def load(path):\n"
     "    try:\n        return open(path)\n"
     "    except OSError as exc:\n"
     "        raise ValueError(f'bad path: {exc}') from exc\n"),
    ("RPR006", "src/repro/serving/router.py",
     "def poll(replicas):\n"
     "    for r in replicas:\n"
     "        try:\n            r.ping()\n"
     "        except (OSError, Exception):\n            continue\n",
     "def poll(replicas):\n"
     "    for r in replicas:\n"
     "        try:\n            r.ping()\n"
     "        except Exception as exc:\n"
     "            r.mark_unhealthy(exc)\n"),
    ("RPR007", "src/repro/serving/pool.py",
     "def copy_in(pool, blocks):\n"
     "    slot = pool.acquire()\n"
     "    validate(blocks)\n"
     "    pool.release(slot)\n",
     "def copy_in(pool, blocks):\n"
     "    slot = pool.acquire()\n"
     "    try:\n"
     "        validate(blocks)\n"
     "    finally:\n"
     "        pool.release(slot)\n"),
    ("RPR007", "src/repro/serving/admit.py",
     "def admit(cache, req):\n"
     "    lease = cache.match(req.prompt)\n"
     "    if req.urgent:\n"
     "        return 0\n"
     "    cache.release(lease)\n"
     "    return 1\n",
     "def admit(cache, req):\n"
     "    lease = cache.match(req.prompt)\n"
     "    if not lease.hit:\n"
     "        return 0\n"
     "    cache.release(lease)\n"
     "    return 1\n"),
    ("RPR008", "src/repro/serving/sched.py",
     "import time\n\n"
     "def _wall_now():\n    return time.time()\n\n"
     "def step(sim):\n"
     "    t = _wall_now()\n"
     "    sim.advance(t)\n",
     "def step(sim, clock):\n    sim.advance(clock + 0.5)\n"),
    ("RPR009", "src/repro/core/exports.py",
     '__all__ = ["dead_helper"]\n\ndef dead_helper():\n    return 1\n',
     '__all__ = ["alive_helper"]\n\ndef alive_helper():\n    return 1\n'
     "\n_PROBE = alive_helper()\n"),
]


class TestRuleCatalog:
    @pytest.mark.parametrize("rule,path,bad,good", RULE_SNIPPETS,
                             ids=[f"{r}-{p.rsplit('/', 1)[1]}"
                                  for r, p, _, _ in RULE_SNIPPETS])
    def test_rule_fires_on_bad_and_not_on_good(self, rule, path, bad,
                                               good):
        assert rule in rules_of(findings_for(bad, path))
        assert rule not in rules_of(findings_for(good, path))

    def test_no_rule_is_dead(self):
        covered = {r for r, _, _, _ in RULE_SNIPPETS}
        # RPR010 needs a call site in a *different* module than the
        # shim, which a single-file snippet cannot express; it is
        # covered by TestDeprecatedReach below.
        covered |= {"RPR010"}
        assert covered == set(all_checkers())

    def test_catalog_maps_rules_to_exported_classes(self):
        assert all_checkers() == {
            "RPR001": VirtualClockChecker,
            "RPR002": AutogradContractChecker,
            "RPR003": UnitsHygieneChecker,
            "RPR004": ApiHygieneChecker,
            "RPR005": FloatEqualityChecker,
            "RPR006": ExceptionHygieneChecker,
            "RPR007": ResourceLeakChecker,
            "RPR008": DeterminismTaintChecker,
            "RPR009": DeadExportChecker,
            "RPR010": DeprecatedReachChecker,
        }

    def test_findings_carry_location_and_severity(self):
        found = findings_for(
            "import time\n\ndef f():\n    return time.time()\n")
        (finding,) = [f for f in found if f.rule == "RPR001"]
        assert finding.line == 4
        assert finding.col > 0
        assert finding.severity == "error"
        assert "time.time" in finding.message

    def test_scoping_keeps_simulation_rules_out_of_other_dirs(self):
        source = "import time\n\ndef f():\n    return time.time()\n"
        assert "RPR001" in rules_of(
            findings_for(source, "src/repro/serving/x.py"))
        assert "RPR001" not in rules_of(
            findings_for(source, "src/repro/tokenizers/x.py"))

    def test_float_equality_skips_test_files(self):
        source = "def f(a, b):\n    return a / b == 0.5\n"
        assert "RPR005" not in rules_of(
            findings_for(source, "tests/test_memory.py"))

    def test_parse_error_is_reported_not_raised(self):
        found = findings_for("def broken(:\n")
        assert rules_of(found) == {"RPR000"}

    def test_resolve_rules_subset_and_unknown(self):
        subset = resolve_rules("RPR001,RPR003")
        assert [c.rule for c in subset] == ["RPR001", "RPR003"]
        with pytest.raises(ValueError, match="unknown rule"):
            resolve_rules("RPR999")


class TestSuppressions:
    BAD = ("import time\n\ndef f():\n"
           "    return time.time()  # repro: ignore[RPR001] virtual\n")

    def test_ignore_comment_suppresses_the_rule(self):
        assert "RPR001" not in rules_of(findings_for(self.BAD))

    def test_wildcard_suppresses_everything(self):
        source = self.BAD.replace("RPR001", "*")
        assert "RPR001" not in rules_of(findings_for(source))

    def test_other_rule_id_does_not_suppress(self):
        source = self.BAD.replace("RPR001", "RPR004")
        found = rules_of(findings_for(source))
        assert "RPR001" in found

    def test_unused_suppression_is_reported(self):
        source = "def _f():\n    return 1  # repro: ignore[RPR001]\n"
        found = findings_for(source)
        assert rules_of(found) == {"RPR000"}
        assert "unused suppression" in found[0].message

    def test_string_literals_are_not_suppressions(self):
        sheet = collect_suppressions(
            's = "# repro: ignore[RPR001]"\n')
        assert not sheet.suppresses(1, "RPR001")


class TestBaseline:
    def test_round_trip(self, tmp_path):
        findings = [Finding(path="src/x.py", line=3, col=1,
                            rule="RPR001", severity="error",
                            message="wall-clock call time.time()")]
        path = write_baseline(findings, tmp_path / "base.json")
        fingerprints = load_baseline(path)
        fresh, known = split_baselined(findings, fingerprints)
        assert fresh == [] and known == findings

    def test_baseline_matching_ignores_line_moves(self, tmp_path):
        original = Finding(path="src/x.py", line=3, col=1, rule="RPR001",
                           severity="error", message="m")
        moved = Finding(path="src/x.py", line=30, col=5, rule="RPR001",
                        severity="error", message="m")
        fingerprints = load_baseline(
            write_baseline([original], tmp_path / "b.json"))
        fresh, known = split_baselined([moved], fingerprints)
        assert fresh == [] and known == [moved]

    def test_unknown_version_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(ValueError, match="baseline version"):
            load_baseline(path)


def write_tree(tmp_path, bad=True):
    pkg = tmp_path / "src" / "repro" / "serving"
    pkg.mkdir(parents=True)
    body = "import time\n\ndef _f():\n    return time.time()\n" if bad \
        else "def _f(clock):\n    return clock\n"
    (pkg / "mod.py").write_text(body)
    return tmp_path / "src"


class TestRunnerAndOutput:
    def test_lint_paths_walks_directories(self, tmp_path):
        root = write_tree(tmp_path)
        report = lint_paths([root], ALL_RULES)
        assert report.checked_files == 1
        assert report.exit_code == 1
        assert rules_of(report.findings) == {"RPR001"}

    def test_json_schema(self, tmp_path):
        report = lint_paths([write_tree(tmp_path)], ALL_RULES)
        doc = json.loads(format_json(report))
        assert doc["version"] == 1
        assert doc["checked_files"] == 1
        assert doc["exit_code"] == 1
        assert doc["elapsed_s"] >= 0.0
        assert set(doc["rules"]) == set(all_checkers())
        (entry,) = doc["findings"]
        assert set(entry) == {"path", "line", "col", "rule", "severity",
                              "message"}
        assert entry["rule"] == "RPR001"

    def test_text_format_lists_findings_and_summary(self, tmp_path):
        report = lint_paths([write_tree(tmp_path)], ALL_RULES)
        text = format_text(report)
        assert "RPR001" in text and "1 finding(s)" in text
        clean = lint_paths([write_tree(tmp_path / "ok", bad=False)],
                           ALL_RULES)
        assert format_text(clean).startswith("clean:")

    def test_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            lint_paths(["/no/such/dir"], ALL_RULES)


class TestLintCLI:
    def test_exit_codes_clean_dirty_usage(self, tmp_path, capsys):
        dirty = write_tree(tmp_path)
        assert main(["lint", str(dirty)]) == 1
        clean = write_tree(tmp_path / "ok", bad=False)
        assert main(["lint", str(clean)]) == 0
        assert main(["lint", str(tmp_path / "absent")]) == 2
        assert main(["lint", str(clean), "--rules", "RPR999"]) == 2
        capsys.readouterr()

    def test_json_output_and_report_file(self, tmp_path, capsys):
        root = write_tree(tmp_path)
        out_file = tmp_path / "report.json"
        code = main(["lint", str(root), "--format", "json",
                     "--output", str(out_file)])
        assert code == 1
        stdout = capsys.readouterr().out
        assert json.loads(stdout)["findings"]
        assert json.loads(out_file.read_text())["exit_code"] == 1

    def test_baseline_workflow_end_to_end(self, tmp_path, capsys):
        root = write_tree(tmp_path)
        base = tmp_path / "baseline.json"
        assert main(["lint", str(root), "--write-baseline",
                     str(base)]) == 0
        # Accepted findings no longer fail...
        assert main(["lint", str(root), "--baseline", str(base)]) == 0
        out = capsys.readouterr().out
        assert "baselined" in out
        # ...but a new finding alongside them still does.
        extra = root / "repro" / "serving" / "new.py"
        extra.write_text("import time\nT0 = time.time()\n")
        assert main(["lint", str(root), "--baseline", str(base)]) == 1

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in all_checkers():
            assert rule in out

    def test_repo_tree_is_clean_against_shipped_baseline(self):
        # The dogfooding guarantee: `repro lint src/` exits 0 as shipped.
        assert main(["lint", "src", "--baseline",
                     "lint-baseline.json"]) == 0


class TestDogfood:
    def test_shipped_baseline_is_empty(self):
        assert load_baseline("lint-baseline.json") == set()


# ----------------------------------------------------------------------
# Flow machinery: CFG construction and dataflow fixpoints.
# ----------------------------------------------------------------------

def cfg_for(source):
    return build_cfg(function_defs(ast.parse(source))[0])


def node_at(cfg, label):
    return next(n for n in cfg.nodes if n.label == label)


class TestCFG:
    def test_if_elif_else_branches_converge(self):
        cfg = cfg_for(
            "def f(x):\n"
            "    if x > 0:\n"
            "        a = 1\n"
            "    elif x < 0:\n"
            "        a = 2\n"
            "    else:\n"
            "        a = 3\n"
            "    return a\n")
        tests = [n for n in cfg.nodes if n.label == "if"]
        assert len(tests) == 2  # the elif lowers to a nested if
        assert {k for _, k in tests[0].succs} == {"true", "false"}
        ret = node_at(cfg, "return")
        assert len(ret.preds) == 3  # all three branches meet here
        assert cfg.reachable() >= set(cfg.nodes)

    def test_while_loop_back_edge_and_exception_edge(self):
        cfg = cfg_for(
            "def f(n):\n"
            "    while n:\n"
            "        n = step(n)\n"
            "    return n\n")
        header = node_at(cfg, "while")
        body = node_at(cfg, "Assign")
        assert (header, "normal") in body.succs          # back edge
        assert (cfg.exit, "exception") in body.succs     # step() may raise
        assert "false" in {k for _, k in header.succs}

    def test_while_true_exits_only_through_break(self):
        cfg = cfg_for(
            "def f(q):\n"
            "    while True:\n"
            "        item = q.get()\n"
            "        if item is None:\n"
            "            break\n"
            "    return 1\n")
        header = node_at(cfg, "while")
        assert "false" not in {k for _, k in header.succs}
        ret = node_at(cfg, "return")
        assert {k for _, k in ret.preds} == {"break"}

    def test_for_loop_iter_and_exhausted_edges(self):
        cfg = cfg_for(
            "def f(xs):\n"
            "    total = 0\n"
            "    for x in xs:\n"
            "        total += x\n"
            "    return total\n")
        header = node_at(cfg, "for")
        kinds = {k for _, k in header.succs}
        assert {"iter", "exhausted", "exception"} <= kinds
        body = node_at(cfg, "AugAssign")
        assert (header, "normal") in body.succs          # back edge

    def test_try_finally_subgraph_is_shared(self):
        cfg = cfg_for(
            "def f(pool):\n"
            "    slot = pool.acquire()\n"
            "    try:\n"
            "        fill(slot)\n"
            "    finally:\n"
            "        pool.release(slot)\n")
        fin = node_at(cfg, "finally")
        fill = next(n for n in cfg.nodes if n.line == 4)
        release = next(n for n in cfg.nodes if n.line == 6)
        # Both the normal and the exceptional body exits funnel into
        # the one finally block...
        assert {t for t, _ in fill.succs} == {fin}
        assert {"normal", "exception"} == {k for _, k in fill.succs}
        # ...and the finally's exit propagates the pending exception.
        assert (cfg.exit, "exception") in release.succs
        assert (cfg.exit, "normal") in release.succs

    def test_catch_all_handler_stops_propagation(self):
        caught = cfg_for(
            "def f(x):\n"
            "    try:\n"
            "        risky(x)\n"
            "    except Exception:\n"
            "        cleanup()\n"
            "    return x\n")
        risky = next(n for n in caught.nodes if n.line == 3)
        handler = next(n for n in caught.nodes
                       if n.label.startswith("except"))
        assert risky.successors("exception") == [handler]
        # A typed handler may not match, so the exception can escape.
        typed = cfg_for(
            "def f(x):\n"
            "    try:\n"
            "        risky(x)\n"
            "    except ValueError:\n"
            "        cleanup()\n"
            "    return x\n")
        risky = next(n for n in typed.nodes if n.line == 3)
        assert set(risky.successors("exception")) == {
            next(n for n in typed.nodes if n.label.startswith("except")),
            typed.exit}

    def test_with_header_and_body_may_raise(self):
        cfg = cfg_for(
            "def f(path):\n"
            "    with open(path) as fh:\n"
            "        data = fh.read()\n"
            "    return data\n")
        header = node_at(cfg, "with")
        assert (cfg.exit, "exception") in header.succs   # __enter__
        body = node_at(cfg, "Assign")
        assert (cfg.exit, "exception") in body.succs     # fh.read()

    def test_nested_function_body_is_opaque(self):
        cfg = cfg_for(
            "def f(xs):\n"
            "    def helper(x):\n"
            "        if x:\n"
            "            return 1\n"
            "        return 2\n"
            "    return helper\n")
        labels = [n.label for n in cfg.statement_nodes()]
        assert labels == ["def helper", "return"]

    def test_may_raise_approximation(self):
        assert may_raise(ast.parse("f()").body[0])
        assert may_raise(ast.parse("x[0]").body[0])
        assert may_raise(ast.parse("raise ValueError").body[0])
        assert not may_raise(ast.parse("y = a.b + c").body[0])
        # Defining a lambda does not run its body.
        assert not may_raise(ast.parse("g = lambda: f()").body[0])

    def test_function_defs_finds_nested_and_methods(self):
        tree = ast.parse(
            "def a():\n"
            "    def b():\n"
            "        pass\n"
            "\n"
            "class C:\n"
            "    def m(self):\n"
            "        pass\n")
        assert {f.name for f in function_defs(tree)} == {"a", "b", "m"}


class TestDataflow:
    def test_reaching_definitions_converge_through_a_loop(self):
        cfg = cfg_for(
            "def f(n):\n"
            "    x = 0\n"
            "    while n:\n"
            "        x = x + 1\n"
            "    return x\n")
        solution = solve(cfg, ReachingDefinitions())
        ret = node_at(cfg, "return")
        assert len({d for d in solution[ret][0] if d[0] == "x"}) == 2

    def test_solution_is_a_fixpoint(self):
        cfg = cfg_for(
            "def f(grid):\n"
            "    hits = 0\n"
            "    for row in grid:\n"
            "        for cell in row:\n"
            "            if cell:\n"
            "                hits = hits + 1\n"
            "            else:\n"
            "                hits = 0\n"
            "    return hits\n")
        first = solve(cfg, ReachingDefinitions())
        second = solve(cfg, ReachingDefinitions())
        assert first == second
        assert set(first) == set(cfg.nodes)

    def test_liveness_before_and_after_uses(self):
        cfg = cfg_for(
            "def f(a, b):\n"
            "    t = a + b\n"
            "    u = t * 2\n"
            "    return u\n")
        solution = solve(cfg, Liveness())
        assigns = sorted((n for n in cfg.nodes if n.label == "Assign"),
                         key=lambda n: n.line)
        # For backward problems "out" is the fact set *before* the node.
        assert solution[assigns[0]][1] == frozenset({"a", "b"})
        assert solution[assigns[1]][1] == frozenset({"t"})

    def test_exception_edge_excludes_the_failing_definition(self):
        cfg = cfg_for(
            "def f(pool):\n"
            "    try:\n"
            "        slot = pool.acquire()\n"
            "    except Exception:\n"
            "        slot = None\n"
            "    return slot\n")
        solution = solve(cfg, ReachingDefinitions())
        handler = next(n for n in cfg.nodes
                       if n.label.startswith("except"))
        # pool.acquire() raising means the assignment never landed.
        assert not {d for d in solution[handler][0] if d[0] == "slot"}
        ret = node_at(cfg, "return")
        assert len({d for d in solution[ret][0] if d[0] == "slot"}) == 2


# ----------------------------------------------------------------------
# Whole-program machinery: module index and call graph.
# ----------------------------------------------------------------------

class TestProjectMachinery:
    def test_module_name_for_layouts(self):
        assert module_name_for("src/repro/serving/engine.py") \
            == "repro.serving.engine"
        assert module_name_for("src/repro/analysis/__init__.py") \
            == "repro.analysis"
        assert module_name_for("tests/test_thing.py") == "tests.test_thing"

    def test_resolve_symbol_follows_reexport_chain(self):
        index = ProjectIndex.build([
            ("src/repro/core/impl.py", "def thing():\n    return 1\n"),
            ("src/repro/core/__init__.py", "from .impl import thing\n"),
            ("src/repro/api.py", "from repro.core import thing\n"),
        ], use_cache=False)
        assert index.resolve_symbol("repro.api", "thing") \
            == "repro.core.impl.thing"

    def test_call_graph_resolves_imports_and_self_methods(self):
        index = ProjectIndex.build([
            ("src/repro/core/worker.py",
             "from repro.core.jobs import run_job\n\n"
             "class Worker:\n"
             "    def step(self):\n"
             "        return self.poll()\n\n"
             "    def poll(self):\n"
             "        return run_job()\n"),
            ("src/repro/core/jobs.py", "def run_job():\n    return 1\n"),
        ], use_cache=False)
        graph = build_call_graph(index)
        assert "repro.core.worker.Worker.poll" \
            in graph.callees("repro.core.worker.Worker.step")
        assert "repro.core.jobs.run_job" \
            in graph.callees("repro.core.worker.Worker.poll")

    def test_calls_through_local_variables_do_not_resolve(self):
        index = ProjectIndex.build(
            [("src/repro/m.py", "def f(obj):\n    return obj.go()\n")],
            use_cache=False)
        info = index.modules["repro.m"]
        call = next(n for n in ast.walk(info.tree)
                    if isinstance(n, ast.Call))
        assert resolve_call(index, info, call) is None


# ----------------------------------------------------------------------
# Project rules, single-file corner cases.
# ----------------------------------------------------------------------

class TestResourceLeakRule:
    @staticmethod
    def leaks(source, path="src/repro/serving/pool.py"):
        return [f.message for f in findings_for(source, path)
                if f.rule == "RPR007"]

    def test_exception_path_leak_names_the_path_kind(self):
        (msg,) = self.leaks(
            "def grab(pool, blocks):\n"
            "    slot = pool.acquire()\n"
            "    validate(blocks)\n"
            "    pool.release(slot)\n")
        assert "never released on an exception path" in msg

    def test_early_return_leak_is_some_path(self):
        (msg,) = self.leaks(
            "def grab(pool, flag):\n"
            "    slot = pool.acquire()\n"
            "    if flag:\n"
            "        return None\n"
            "    pool.release(slot)\n")
        assert "never released on some path" in msg

    def test_passing_the_handle_on_transfers_ownership(self):
        assert not self.leaks(
            "def hand_off(pool, queue):\n"
            "    slot = pool.acquire()\n"
            "    queue.put(slot)\n")

    def test_returning_the_handle_transfers_ownership(self):
        assert not self.leaks(
            "def grab(pool):\n"
            "    slot = pool.acquire()\n"
            "    return slot\n")

    def test_overwrite_while_held_is_reported(self):
        msgs = self.leaks(
            "def churn(pool):\n"
            "    slot = pool.acquire()\n"
            "    slot = pool.acquire()\n"
            "    pool.release(slot)\n")
        assert any("overwritten while still held" in m for m in msgs)

    def test_retain_opens_a_lease(self):
        assert self.leaks(
            "def pin(store, name):\n"
            "    store.retain(name)\n"
            "    work()\n")
        assert not self.leaks(
            "def pin(store, name):\n"
            "    store.retain(name)\n"
            "    try:\n"
            "        work()\n"
            "    finally:\n"
            "        store.release(name)\n")

    def test_is_none_guard_clears_the_miss_path(self):
        assert not self.leaks(
            "def fetch(cache, key):\n"
            "    entry = cache.acquire()\n"
            "    if entry is None:\n"
            "        return None\n"
            "    cache.release(entry)\n"
            "    return entry\n")

    def test_re_match_is_not_a_lease(self):
        assert not self.leaks(
            "import re\n\n"
            "def scan(pat, text):\n"
            "    m = re.match(pat, text)\n"
            "    return m\n")


class TestDeterminismTaintRule:
    @staticmethod
    def taints(source, path="src/repro/serving/sched.py"):
        return [f for f in findings_for(source, path)
                if f.rule == "RPR008"]

    def test_taint_propagates_through_a_helper_chain(self):
        found = self.taints(
            "import time\n\n"
            "def _wall():\n"
            "    return time.time()\n\n"
            "def _jitter():\n"
            "    return _wall() * 0.5\n\n"
            "def step(sim):\n"
            "    delay = _jitter()\n"
            "    sim.wait(delay)\n")
        assert {f.line for f in found} == {7, 10}
        assert any("_jitter" in f.message for f in found)

    def test_discarded_result_is_not_flagged(self):
        assert not self.taints(
            "import time\n\n"
            "def _wall():\n"
            "    return time.time()\n\n"
            "def step(sim):\n"
            "    _wall()\n"
            "    sim.tick()\n")

    def test_out_of_scope_dirs_are_exempt(self):
        source = ("import time\n\n"
                  "def _wall():\n"
                  "    return time.time()\n\n"
                  "def encode(text):\n"
                  "    return text, _wall()\n")
        assert not self.taints(source, "src/repro/tokenizers/bpe.py")
        assert self.taints(source, "src/repro/parallel/sim.py")


# ----------------------------------------------------------------------
# Project rules across module boundaries (the real two-phase runner).
# ----------------------------------------------------------------------

def write_project(tmp_path, files):
    root = tmp_path / "src"
    for rel, body in files.items():
        path = root / "repro" / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(body)
    return root


class TestCrossModuleRules:
    def test_taint_crosses_module_boundaries(self, tmp_path):
        root = write_project(tmp_path, {
            "core/timeutil.py": "import time\n\n"
                                "def _wall_now():\n"
                                "    return time.time()\n",
            "serving/sched.py": "from repro.core.timeutil import "
                                "_wall_now\n\n"
                                "def _step(sim):\n"
                                "    t = _wall_now()\n"
                                "    sim.advance(t)\n",
        })
        report = lint_paths([root], ALL_RULES)
        taints = [f for f in report.findings if f.rule == "RPR008"]
        assert [(Path(f.path).name, f.line) for f in taints] \
            == [("sched.py", 4)]

    def test_dead_export_sees_usage_everywhere(self, tmp_path):
        root = write_project(tmp_path, {
            "core/api.py": '__all__ = ["dead", "used"]\n\n'
                           "def used():\n    return 1\n\n"
                           "def dead():\n    return 2\n",
            "serving/consume.py": "from repro.core.api import used\n\n"
                                  "_VALUE = used()\n",
        })
        dead = [f for f in lint_paths([root], ALL_RULES).findings
                if f.rule == "RPR009"]
        assert len(dead) == 1 and "'dead'" in dead[0].message
        # A test importing the name counts as usage (usage_roots are
        # indexed but never linted).
        probe = tmp_path / "tests"
        probe.mkdir()
        (probe / "test_api.py").write_text(
            "from repro.core.api import dead\n\n_SMOKE = dead()\n")
        report = lint_paths([root], ALL_RULES, usage_roots=[probe])
        assert not [f for f in report.findings if f.rule == "RPR009"]

    DEPRECATED_TREE = {
        "core/old.py": "import warnings\n\n"
                       '__all__ = ["Engine", "fresh", "legacy"]\n\n\n'
                       "def fresh():\n"
                       "    return 1\n\n\n"
                       "def legacy():\n"
                       '    warnings.warn("use fresh()", '
                       "DeprecationWarning)\n"
                       "    return fresh()\n\n\n"
                       "class Engine:\n"
                       "    def __init__(self, cfg, legacy_mode=None):\n"
                       "        self.cfg = cfg\n"
                       "        if legacy_mode is not None:\n"
                       '            warnings.warn("legacy_mode", '
                       "DeprecationWarning)\n\n\n"
                       "_SMOKE = legacy()\n",
        "serving/newcode.py": "from repro.core.old import Engine, "
                              "legacy\n\n\n"
                              "def _boot(cfg):\n"
                              "    engine = Engine(cfg, "
                              "legacy_mode=True)\n"
                              "    return legacy(), engine\n",
    }

    def test_deprecated_shim_and_kwarg_reachability(self, tmp_path):
        root = write_project(tmp_path, self.DEPRECATED_TREE)
        found = [f for f in lint_paths([root], ALL_RULES).findings
                 if f.rule == "RPR010"]
        # The defining module's own call does not count; the two call
        # sites in serving/newcode.py do.
        assert all(Path(f.path).name == "newcode.py" for f in found)
        messages = sorted(f.message for f in found)
        assert len(messages) == 2
        assert "call reaches deprecated shim legacy()" in messages[0]
        assert "deprecated keyword 'legacy_mode'" in messages[1]


LEAKY_TREE = {
    "serving/leak.py": "def _grab(pool, blocks):\n"
                       "    slot = pool.acquire()\n"
                       "    validate(blocks)\n"
                       "    pool.release(slot)\n",
    "core/api.py": '__all__ = ["dead"]\n\ndef dead():\n    return 1\n',
}


class TestProjectPhasePipeline:
    """Suppressions and the baseline apply to phase-two findings too."""

    def test_findings_round_trip_through_the_baseline(self, tmp_path):
        root = write_project(tmp_path, LEAKY_TREE)
        report = lint_paths([root], ALL_RULES)
        assert {"RPR007", "RPR009"} <= rules_of(report.findings)
        base = load_baseline(
            write_baseline(report.findings, tmp_path / "b.json"))
        again = lint_paths([root], ALL_RULES, baseline=base)
        assert again.exit_code == 0 and not again.findings
        assert sorted(f.format() for f in again.baselined) \
            == sorted(f.format() for f in report.findings)

    def test_every_project_finding_is_suppressible_at_its_line(
            self, tmp_path):
        root = write_project(tmp_path, LEAKY_TREE)
        report = lint_paths([root], ALL_RULES)
        assert report.findings
        by_file = {}
        for finding in report.findings:
            by_file.setdefault(finding.path, set()).add(
                (finding.line, finding.rule))
        for path, pairs in by_file.items():
            lines = Path(path).read_text().splitlines()
            for line, rule in pairs:
                lines[line - 1] += f"  # repro: ignore[{rule}]"
            Path(path).write_text("\n".join(lines) + "\n")
        clean = lint_paths([root], ALL_RULES)
        assert clean.exit_code == 0 and not clean.findings


# ----------------------------------------------------------------------
# AST/result caching and the --changed mode.
# ----------------------------------------------------------------------

class TestASTCaching:
    def test_two_phase_run_parses_each_file_once(self, tmp_path):
        root = write_tree(tmp_path)
        cache = ASTCache()
        first = lint_paths([root], ALL_RULES, cache=cache)
        assert cache.parse_count == 1   # phase two reused the tree
        assert cache.hits >= 1
        second = lint_paths([root], ALL_RULES, cache=cache)
        assert cache.parse_count == 1   # results and trees both cached
        assert [f.format() for f in second.findings] \
            == [f.format() for f in first.findings]

    def test_edited_content_invalidates_the_cache(self, tmp_path):
        root = write_tree(tmp_path)
        cache = ASTCache()
        lint_paths([root], ALL_RULES, cache=cache)
        target = root / "repro" / "serving" / "mod.py"
        target.write_text("def _f(clock):\n    return clock\n")
        report = lint_paths([root], ALL_RULES, cache=cache)
        assert cache.parse_count == 2
        assert not report.findings

    def test_use_cache_false_bypasses_the_store(self, tmp_path):
        root = write_tree(tmp_path)
        cache = ASTCache()
        lint_paths([root], ALL_RULES, cache=cache, use_cache=False)
        before = cache.parse_count
        lint_paths([root], ALL_RULES, cache=cache, use_cache=False)
        assert cache.parse_count > before

    def test_no_cache_cli_flag(self, tmp_path, capsys):
        root = write_tree(tmp_path)
        assert main(["lint", str(root), "--no-cache"]) == 1
        capsys.readouterr()


class TestChangedMode:
    @staticmethod
    def git(*argv, **kwargs):
        subprocess.run(["git", *argv], check=True, **kwargs)

    def seed_repo(self, tmp_path, monkeypatch):
        write_tree(tmp_path)
        monkeypatch.chdir(tmp_path)
        self.git("init", "-q")
        self.git("add", "-A")
        self.git("-c", "user.email=t@example.com", "-c",
                 "user.name=tester", "commit", "-qm", "seed")

    def test_changed_limits_findings_to_modified_files(
            self, tmp_path, monkeypatch, capsys):
        self.seed_repo(tmp_path, monkeypatch)
        # Everything committed: --changed lints nothing, a full run
        # still sees the old finding.
        assert main(["lint", "src", "--changed"]) == 0
        assert main(["lint", "src"]) == 1
        capsys.readouterr()
        # An untracked file counts as changed; the committed one stays
        # out of the report.
        fresh = Path("src/repro/serving/fresh.py")
        fresh.write_text("import time\nT0 = time.time()\n")
        assert main(["lint", "src", "--changed"]) == 1
        out = capsys.readouterr().out
        assert "fresh.py" in out and "mod.py" not in out

    def test_changed_accepts_an_explicit_ref(
            self, tmp_path, monkeypatch, capsys):
        self.seed_repo(tmp_path, monkeypatch)
        target = Path("src/repro/serving/mod.py")
        target.write_text("def _f(clock):\n    return clock\n")
        self.git("add", "-A")
        self.git("-c", "user.email=t@example.com", "-c",
                 "user.name=tester", "commit", "-qm", "fix")
        # Against HEAD the tree is clean; against the seed commit the
        # fixed file is in scope (and passes).
        assert main(["lint", "src", "--changed"]) == 0
        assert main(["lint", "src", "--changed", "HEAD~1"]) == 0
        out = capsys.readouterr().out
        assert "1 file(s)" in out.splitlines()[-1]

    def test_changed_outside_a_git_repo_is_a_usage_error(
            self, tmp_path, monkeypatch, capsys):
        write_tree(tmp_path)
        monkeypatch.chdir(tmp_path)
        assert main(["lint", "src", "--changed"]) == 2
        capsys.readouterr()

"""Tests for the report generator, corpus persistence and bootstrap CI."""

import numpy as np
import pytest

from repro.core import ExperimentContext, build_report, write_report
from repro.data import AbstractGenerator, load_corpus, save_corpus
from repro.data.persistence import iter_corpus
from repro.matsci import bootstrap_mae_ci


@pytest.fixture(scope="module")
def report_text():
    return build_report(ExperimentContext())


class TestReport:
    def test_contains_all_sections(self, report_text):
        for section in ("## Observations", "## Table IV", "## Fig 4",
                        "## Fig 5", "## Fig 8", "## Fig 11", "## Fig 13"):
            assert section in report_text

    def test_observations_hold_in_report(self, report_text):
        assert report_text.count("HOLDS") >= 3
        assert "VIOLATED" not in report_text

    def test_anchor_values_present(self, report_text):
        assert "24 layers x 2304 hidden" in report_text
        assert "32768 with" in report_text  # Fig 5's 4x context

    def test_valid_markdown_tables(self, report_text):
        for line in report_text.splitlines():
            if line.startswith("|"):
                assert line.endswith("|")

    def test_write_report(self, tmp_path):
        path = write_report(tmp_path / "R.md")
        assert path.exists()
        assert path.read_text().startswith("# Reproduction report")


class TestCorpusPersistence:
    def test_roundtrip(self, tmp_path):
        docs = AbstractGenerator(seed=0).sample(15, materials_fraction=0.6)
        path = save_corpus(docs, tmp_path / "corpus")
        assert path.suffix == ".jsonl"
        assert load_corpus(path) == docs

    def test_streaming_iter(self, tmp_path):
        docs = AbstractGenerator(seed=1).sample(5)
        path = save_corpus(docs, tmp_path / "c")
        streamed = list(iter_corpus(path))
        assert streamed == docs

    def test_blank_lines_skipped(self, tmp_path):
        docs = AbstractGenerator(seed=2).sample(3)
        path = save_corpus(docs, tmp_path / "c")
        path.write_text(path.read_text() + "\n\n")
        assert len(load_corpus(path)) == 3

    def test_invalid_json_reported_with_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"text": "ok", "domain": "other"}\nnot json\n')
        with pytest.raises(ValueError, match="2"):
            load_corpus(path)

    def test_missing_fields_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"text": "no domain"}\n')
        with pytest.raises(ValueError, match="domain"):
            load_corpus(path)


class TestBootstrapCI:
    def test_interval_brackets_mae(self):
        rng = np.random.default_rng(0)
        t = rng.normal(size=200)
        pred = t + rng.normal(0, 0.5, 200)
        mae, lo, hi = bootstrap_mae_ci(pred, t)
        assert lo < mae < hi
        assert mae == pytest.approx(np.abs(pred - t).mean())

    def test_interval_narrows_with_n(self):
        rng = np.random.default_rng(1)
        def width(n):
            t = rng.normal(size=n)
            pred = t + rng.normal(0, 0.5, n)
            _, lo, hi = bootstrap_mae_ci(pred, t, seed=2)
            return hi - lo
        assert width(800) < width(50)

    def test_perfect_predictions(self):
        t = np.arange(10.0)
        mae, lo, hi = bootstrap_mae_ci(t, t)
        assert mae == lo == hi == 0.0

    def test_deterministic(self):
        rng = np.random.default_rng(3)
        t = rng.normal(size=50)
        pred = t + 0.1
        a = bootstrap_mae_ci(pred, t, seed=4)
        b = bootstrap_mae_ci(pred, t, seed=4)
        assert a == b

    def test_validations(self):
        with pytest.raises(ValueError):
            bootstrap_mae_ci(np.ones(3), np.ones(4))
        with pytest.raises(ValueError):
            bootstrap_mae_ci(np.ones(3), np.ones(3), confidence=1.5)

"""Documentation-consistency tests.

The docs promise specific artifacts; these tests keep them honest: every
benchmark named in DESIGN.md exists, every paper artifact has both a
benchmark and an EXPERIMENTS.md section, and the README's command lines
reference real files.
"""

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent
DESIGN = (ROOT / "DESIGN.md").read_text()
EXPERIMENTS = (ROOT / "EXPERIMENTS.md").read_text()
README = (ROOT / "README.md").read_text()
BENCHES = {p.name for p in (ROOT / "benchmarks").glob("test_*.py")}


class TestDesignDoc:
    def test_every_bench_referenced_in_design_exists(self):
        referenced = set(re.findall(r"benchmarks/(test_\w+\.py)", DESIGN))
        missing = referenced - BENCHES
        assert not missing, missing

    def test_every_paper_artifact_has_a_bench(self):
        artifacts = [f"table{i}" for i in range(1, 6)] + \
            [f"fig{i}" for i in (1, 2, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13,
                                 14, 15, 16, 17)]
        for art in artifacts:
            assert any(art in b for b in BENCHES), art

    def test_identity_check_recorded(self):
        assert "Paper identity check" in DESIGN


class TestExperimentsDoc:
    def test_every_artifact_has_a_section(self):
        for section in ("Table I ", "Table II ", "Table III ", "Table IV ",
                        "Table V ", "Fig 1 ", "Fig 2 ", "Fig 4 ", "Fig 5 ",
                        "Fig 6 ", "Fig 7 ", "Fig 8 ", "Fig 9 ", "Fig 10 ",
                        "Fig 11 ", "Fig 12 ", "Fig 13 ", "Fig 14 ",
                        "Fig 15 ", "Fig 16 ", "Fig 17 "):
            assert f"## {section}" in EXPERIMENTS, section

    def test_deviations_documented(self):
        assert "Token-budget note" in EXPERIMENTS
        assert "Documented deviation" in EXPERIMENTS

    def test_observations_table_present(self):
        assert "## Observations" in EXPERIMENTS
        assert EXPERIMENTS.count("holds") >= 5


class TestReadme:
    def test_example_commands_point_at_real_files(self):
        for name in re.findall(r"python (examples/\w+\.py)", README):
            assert (ROOT / name).exists(), name

    def test_cli_commands_exist(self):
        from repro.cli import _COMMANDS
        for cmd in re.findall(r"python -m repro (\w+)", README):
            assert cmd in _COMMANDS, cmd

    def test_architecture_listing_matches_package(self):
        import repro
        for sub in ("core", "models", "tokenizers", "data", "frontier",
                    "parallel", "training", "profiling", "evalharness",
                    "matsci"):
            assert f"  {sub}/" in README
            assert hasattr(repro, sub)

    def test_docs_directory_files_exist(self):
        assert (ROOT / "docs" / "ARCHITECTURE.md").exists()
        assert (ROOT / "docs" / "API.md").exists()

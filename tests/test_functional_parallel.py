"""Tests for the functional (numerically executed) parallelism layer:
serial equivalence of DP, ZeRO-1, Megatron-TP and GPipe-PP."""

import numpy as np
import pytest

from repro.models import GPTModel, ModelConfig, Tensor, cross_entropy, preset
from repro.models.mlp import GeluMLP, SwiGLUMLP
from repro.parallel.functional import (DataParallelTrainer, PipelineExecutor,
                                       SimulatedComm, Zero1DataParallel,
                                       split_mlp_tensor_parallel,
                                       tp_mlp_forward)
from repro.training import Adam

CFG = ModelConfig(arch="llama", hidden_size=32, num_layers=4, num_heads=4,
                  vocab_size=128, max_seq_len=32)


def factory():
    return GPTModel(CFG, seed=11)


def make_batch(batch=8, seq=12, seed=0):
    rng = np.random.default_rng(seed)
    ids = rng.integers(0, 128, size=(batch, seq + 1))
    return ids[:, :-1], ids[:, 1:]


def serial_steps(n_steps=2, lr=1e-3):
    model = factory()
    opt = Adam(model.parameters(), lr=lr, weight_decay=0.0)
    for step in range(n_steps):
        x, y = make_batch(seed=step)
        loss = cross_entropy(model(x), y)
        opt.zero_grad()
        loss.backward()
        opt.step()
    return model


class TestSimulatedComm:
    def test_allreduce_mean_and_sum(self):
        comm = SimulatedComm(2)
        a = [np.array([1.0, 2.0]), np.array([3.0, 4.0])]
        mean = comm.allreduce(a)
        np.testing.assert_allclose(mean[0], [2.0, 3.0])
        np.testing.assert_allclose(mean[1], mean[0])
        total = comm.allreduce(a, op="sum")
        np.testing.assert_allclose(total[0], [4.0, 6.0])

    def test_allgather(self):
        comm = SimulatedComm(2)
        out = comm.allgather([np.ones((1, 2)), np.zeros((1, 2))])
        assert out[0].shape == (2, 2)
        np.testing.assert_allclose(out[0], out[1])

    def test_reduce_scatter_roundtrip_with_allgather(self):
        comm = SimulatedComm(4)
        data = [np.arange(8.0) + r for r in range(4)]
        pieces = comm.reduce_scatter(data, op="sum")
        gathered = comm.allgather(pieces)[0]
        np.testing.assert_allclose(gathered, np.sum(data, axis=0))

    def test_world_size_checked(self):
        comm = SimulatedComm(3)
        with pytest.raises(ValueError):
            comm.allreduce([np.ones(2)] * 2)
        with pytest.raises(ValueError):
            SimulatedComm(0)

    def test_stats_counted(self):
        comm = SimulatedComm(2)
        comm.allreduce([np.ones(1)] * 2)
        comm.allgather([np.ones(1)] * 2)
        assert comm.stats["allreduce"] == 1
        assert comm.stats["allgather"] == 1


class TestDataParallel:
    def test_dp_matches_serial_training(self):
        """2-rank DP produces bit-identical weights to serial training."""
        dp = DataParallelTrainer(factory, world_size=2, lr=1e-3)
        for step in range(2):
            x, y = make_batch(seed=step)
            dp.step(x, y)
        serial = serial_steps(2)
        serial_state = serial.state_dict()
        dp_state = dp.replicas[0].state_dict()
        for key in serial_state:
            np.testing.assert_allclose(dp_state[key], serial_state[key],
                                       atol=1e-10, err_msg=key)

    def test_replicas_never_diverge(self):
        dp = DataParallelTrainer(factory, world_size=4, lr=1e-3)
        for step in range(2):
            x, y = make_batch(seed=step)
            dp.step(x, y)
        assert dp.max_replica_divergence() < 1e-12

    def test_loss_is_global_mean(self):
        dp = DataParallelTrainer(factory, world_size=2, lr=1e-3)
        x, y = make_batch(seed=0)
        loss = dp.step(x, y)
        fresh = factory()
        expected = cross_entropy(fresh(x), y).item()
        assert loss == pytest.approx(expected, abs=1e-8)

    def test_indivisible_batch_rejected(self):
        dp = DataParallelTrainer(factory, world_size=3, lr=1e-3)
        x, y = make_batch(batch=8)
        with pytest.raises(ValueError):
            dp.step(x, y)


class TestZero1:
    def test_zero1_matches_plain_dp(self):
        """ZeRO-1's sharded update is bit-identical to replicated Adam."""
        dp = DataParallelTrainer(factory, world_size=2, lr=1e-3)
        zero = Zero1DataParallel(factory, world_size=2, lr=1e-3)
        for step in range(2):
            x, y = make_batch(seed=step)
            l1 = dp.step(x, y)
            l2 = zero.step(x, y)
            assert l1 == pytest.approx(l2, abs=1e-10)
        a = dp.replicas[0].state_dict()
        b = zero.replicas[0].state_dict()
        for key in a:
            np.testing.assert_allclose(b[key], a[key], atol=1e-10,
                                       err_msg=key)

    def test_zero1_replicas_consistent(self):
        zero = Zero1DataParallel(factory, world_size=4, lr=1e-3)
        x, y = make_batch(seed=1)
        zero.step(x, y)
        assert zero.max_replica_divergence() < 1e-12

    def test_optimizer_shards_partition_the_states(self):
        zero = Zero1DataParallel(factory, world_size=4, lr=1e-3)
        sizes = zero.optimizer_state_bytes_per_rank()
        total = sum(sizes)
        full = 8 * zero.replicas[0].num_parameters()
        assert total == full               # shards partition exactly
        assert max(sizes) < full           # and each rank holds < all


class TestTensorParallelMLP:
    @pytest.mark.parametrize("mlp_cls,kwargs", [
        (GeluMLP, dict(hidden_size=16, ffn_hidden_size=32)),
        (SwiGLUMLP, dict(hidden_size=16, ffn_hidden_size=24)),
    ])
    @pytest.mark.parametrize("tp", [1, 2, 4])
    def test_tp_matches_serial(self, mlp_cls, kwargs, tp):
        mlp = mlp_cls(rng=np.random.default_rng(5), **kwargs)
        x = np.random.default_rng(6).normal(size=(3, 16))
        serial = mlp(Tensor(x)).data
        shards = split_mlp_tensor_parallel(mlp, tp)
        parallel = tp_mlp_forward(shards, x)
        np.testing.assert_allclose(parallel, serial, atol=1e-10)

    def test_one_allreduce_per_forward(self):
        mlp = GeluMLP(16, 32, rng=np.random.default_rng(0))
        comm = SimulatedComm(2)
        tp_mlp_forward(split_mlp_tensor_parallel(mlp, 2),
                       np.ones((2, 16)), comm=comm)
        assert comm.stats["allreduce"] == 1

    def test_unsupported_module(self):
        from repro.models import Linear
        with pytest.raises(TypeError):
            split_mlp_tensor_parallel(Linear(4, 4), 2)

    def test_invalid_tp(self):
        mlp = GeluMLP(8, 16)
        with pytest.raises(ValueError):
            split_mlp_tensor_parallel(mlp, 0)


class TestPipelineExecutor:
    def test_pipelined_forward_matches_serial(self):
        model = factory()
        model.eval()
        pipe = PipelineExecutor(model, num_stages=2)
        ids = np.random.default_rng(2).integers(0, 128, size=(4, 10))
        run = pipe.forward(ids, micro_batches=2)
        serial = model(ids).data
        np.testing.assert_allclose(run.output.data, serial, atol=1e-10)

    def test_stage_partition_validated(self):
        model = factory()  # 4 layers
        with pytest.raises(ValueError):
            PipelineExecutor(model, num_stages=3)

    def test_batch_partition_validated(self):
        pipe = PipelineExecutor(factory(), num_stages=2)
        with pytest.raises(ValueError):
            pipe.forward(np.zeros((5, 8), dtype=int), micro_batches=2)

    def test_schedule_records_all_work(self):
        pipe = PipelineExecutor(factory(), num_stages=2)
        ids = np.zeros((4, 8), dtype=int)
        run = pipe.forward(ids, micro_batches=4)
        # Each of 4 micro-batches visits both stages exactly once.
        assert len(run.schedule) == 8
        visits = {(s.stage, s.micro_batch) for s in run.schedule}
        assert len(visits) == 8

    def test_bubble_matches_analytic_formula(self):
        pipe = PipelineExecutor(factory(), num_stages=2)
        for m in (2, 4):
            ids = np.zeros((m, 8), dtype=int)
            run = pipe.forward(ids, micro_batches=m)
            ticks = max(s.tick for s in run.schedule) + 1
            measured = run.idle_slots(2) / (ticks * 2)
            assert measured == pytest.approx(pipe.analytic_bubble(m),
                                             abs=1e-9)

    def test_in_order_execution(self):
        """Within a stage, micro-batches execute in order (GPipe)."""
        pipe = PipelineExecutor(factory(), num_stages=2)
        run = pipe.forward(np.zeros((4, 8), dtype=int), micro_batches=4)
        for stage in (0, 1):
            order = [s.micro_batch for s in sorted(run.schedule,
                                                   key=lambda s: s.tick)
                     if s.stage == stage]
            assert order == sorted(order)


class TestTensorParallelAttention:
    @pytest.mark.parametrize("tp", [1, 2, 4, 8])
    def test_tp_attention_matches_serial(self, tp):
        from repro.models import CausalSelfAttention
        from repro.parallel import (split_attention_tensor_parallel,
                                    tp_attention_forward)
        attn = CausalSelfAttention(32, 8, max_seq_len=16,
                                   rng=np.random.default_rng(5))
        attn.eval()
        x = np.random.default_rng(6).normal(size=(2, 10, 32))
        serial = attn(Tensor(x)).data
        shards = split_attention_tensor_parallel(attn, tp)
        parallel = tp_attention_forward(shards, x)
        np.testing.assert_allclose(parallel, serial, atol=1e-10)

    def test_one_allreduce_per_layer(self):
        from repro.models import CausalSelfAttention
        from repro.parallel import (SimulatedComm,
                                    split_attention_tensor_parallel,
                                    tp_attention_forward)
        attn = CausalSelfAttention(16, 4, max_seq_len=8)
        attn.eval()
        comm = SimulatedComm(2)
        tp_attention_forward(split_attention_tensor_parallel(attn, 2),
                             np.ones((1, 4, 16)), comm=comm)
        assert comm.stats["allreduce"] == 1

    def test_eq4_enforced(self):
        from repro.models import CausalSelfAttention
        from repro.parallel import split_attention_tensor_parallel
        attn = CausalSelfAttention(24, 6, max_seq_len=8)
        with pytest.raises(ValueError):
            split_attention_tensor_parallel(attn, 4)  # 6 % 4 != 0

    def test_gqa_rejected(self):
        from repro.models import CausalSelfAttention
        from repro.parallel import split_attention_tensor_parallel
        attn = CausalSelfAttention(32, 8, max_seq_len=8, num_kv_heads=2)
        with pytest.raises(ValueError):
            split_attention_tensor_parallel(attn, 2)

    def test_no_bias_variant(self):
        from repro.models import CausalSelfAttention
        from repro.parallel import (split_attention_tensor_parallel,
                                    tp_attention_forward)
        attn = CausalSelfAttention(16, 4, max_seq_len=8, bias=False,
                                   rng=np.random.default_rng(1))
        attn.eval()
        x = np.random.default_rng(2).normal(size=(1, 6, 16))
        serial = attn(Tensor(x)).data
        parallel = tp_attention_forward(
            split_attention_tensor_parallel(attn, 2), x)
        np.testing.assert_allclose(parallel, serial, atol=1e-10)

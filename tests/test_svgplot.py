"""Tests for the dependency-free SVG plotting layer."""

import xml.etree.ElementTree as ET

import numpy as np
import pytest

from repro.core.svgplot import (SVGCanvas, bar_chart, density_chart,
                                heatmap_chart, line_chart, scatter_chart)

SVG_NS = "{http://www.w3.org/2000/svg}"


def parse(canvas: SVGCanvas) -> ET.Element:
    return ET.fromstring(canvas.to_string())


def count(root: ET.Element, tag: str) -> int:
    return len(root.findall(f".//{SVG_NS}{tag}"))


class TestCanvas:
    def test_valid_xml(self):
        c = SVGCanvas()
        c.rect(1, 2, 3, 4)
        c.line(0, 0, 10, 10)
        c.circle(5, 5, 2)
        c.text(1, 1, "hello <world> & more")
        root = parse(c)
        assert root.tag == f"{SVG_NS}svg"
        assert count(root, "rect") == 2  # background + one rect
        assert count(root, "text") == 1

    def test_text_escaped(self):
        c = SVGCanvas()
        c.text(0, 0, "<&>")
        assert "<&>" not in c.to_string()
        assert "&lt;&amp;&gt;" in c.to_string()

    def test_save_adds_suffix(self, tmp_path):
        c = SVGCanvas()
        path = c.save(tmp_path / "plot")
        assert path.suffix == ".svg"
        assert path.exists()


class TestLineChart:
    def test_series_rendered(self):
        x = np.array([1, 2, 3, 4])
        c = line_chart(x, {"a": x * 1.0, "b": x * 2.0}, title="T")
        root = parse(c)
        assert count(root, "polyline") == 2
        assert count(root, "circle") == 8  # 4 markers per series
        assert "T" in c.to_string()

    def test_log_x_supported(self):
        x = np.array([1e6, 1e7, 1e8])
        c = line_chart(x, {"s": np.array([3.0, 2.0, 1.0])}, log_x=True)
        parse(c)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            line_chart(np.arange(3), {"s": np.arange(4)})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            line_chart(np.arange(3), {})

    def test_value_mapping_monotone(self):
        """Higher y values must land at smaller pixel y (SVG is flipped)."""
        x = np.array([0.0, 1.0])
        c = line_chart(x, {"s": np.array([0.0, 10.0])})
        poly = parse(c).find(f".//{SVG_NS}polyline").get("points")
        (x1, y1), (x2, y2) = [tuple(map(float, p.split(",")))
                              for p in poly.split()]
        assert y2 < y1  # larger value is higher on screen


class TestBarChart:
    def test_grouped_bars(self):
        c = bar_chart({"sciq": {"neox": 0.9, "llama": 0.8},
                       "piqa": {"neox": 0.7, "llama": 0.75}},
                      title="bars")
        root = parse(c)
        # background + legend swatches (2) + 4 bars
        assert count(root, "rect") >= 7

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bar_chart({})


class TestHeatmap:
    def test_cells_rendered_and_nan_skipped(self):
        m = np.array([[1.0, 2.0], [3.0, np.nan]])
        c = heatmap_chart([16, 24], [["a", "b"], ["c", "d"]], m)
        root = parse(c)
        # 3 finite cells + background + 40 ramp segments
        assert count(root, "rect") == 1 + 3 + 40

    def test_all_nan_rejected(self):
        with pytest.raises(ValueError):
            heatmap_chart([1], [["x"]], np.array([[np.nan]]))


class TestScatter:
    def test_points_and_legend(self):
        pts = np.random.default_rng(0).normal(size=(30, 2))
        labels = np.array([0] * 15 + [1] * 15)
        c = scatter_chart(pts, labels)
        root = parse(c)
        assert count(root, "circle") == 30
        assert "cluster 0" in c.to_string()

    def test_shape_validated(self):
        with pytest.raises(ValueError):
            scatter_chart(np.zeros((4, 3)))


class TestDensity:
    def test_density_curves(self):
        rng = np.random.default_rng(0)
        c = density_chart({"a": rng.normal(0, 1, 300),
                           "b": rng.normal(3, 1, 300)}, bins=20)
        root = parse(c)
        assert count(root, "polyline") == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            density_chart({})

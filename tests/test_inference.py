"""Tests for inference features: KV-cache decoding, checkpointing,
perplexity/BPC evaluation."""

import numpy as np
import pytest

from repro.data import AbstractGenerator, PackedDataset
from repro.evalharness import bits_per_character, perplexity
from repro.models import (GPTModel, KVCache, ModelConfig, load_checkpoint,
                          load_tokenizer, preset, save_checkpoint,
                          save_tokenizer)
from repro.tokenizers import BPETokenizer, UnigramTokenizer
from repro.training import Trainer, TrainerConfig


@pytest.fixture(scope="module")
def tok_and_texts():
    texts = [d.text for d in AbstractGenerator(seed=0).sample(120)]
    return BPETokenizer().train(texts, 480), texts


@pytest.fixture(scope="module")
def trained(tok_and_texts):
    tok, texts = tok_and_texts
    ds = PackedDataset.from_texts(texts, tok, seq_len=48)
    model = GPTModel(preset("tiny-llama"), seed=0)
    Trainer(model, ds, TrainerConfig(optimizer="adam", lr=5e-3, batch_size=8,
                                     max_steps=40, eval_every=1000)).train()
    return model


class TestKVCache:
    @pytest.mark.parametrize("name", ["tiny-llama", "tiny-neox"])
    def test_cached_generation_identical(self, name):
        model = GPTModel(preset(name), seed=0)
        prompt = np.array([3, 14, 15, 9])
        a = model.generate(prompt, 16)
        b = model.generate(prompt, 16, use_cache=True)
        np.testing.assert_array_equal(a, b)

    def test_cached_generation_gqa(self):
        cfg = ModelConfig(arch="llama", hidden_size=64, num_layers=2,
                          num_heads=8, num_kv_heads=2, vocab_size=256,
                          max_seq_len=64)
        model = GPTModel(cfg, seed=1)
        prompt = np.array([7, 8])
        np.testing.assert_array_equal(
            model.generate(prompt, 12),
            model.generate(prompt, 12, use_cache=True))

    def test_cached_sampling_identical(self):
        model = GPTModel(preset("tiny-llama"), seed=0)
        prompt = np.array([1, 2])
        a = model.generate(prompt, 8, temperature=1.2,
                           rng=np.random.default_rng(5))
        b = model.generate(prompt, 8, temperature=1.2,
                           rng=np.random.default_rng(5), use_cache=True)
        np.testing.assert_array_equal(a, b)

    def test_cache_grows_per_token(self):
        model = GPTModel(preset("tiny-llama"), seed=0)
        caches = [KVCache() for _ in model.layers]
        model._forward_cached(np.array([[1, 2, 3]]), caches)
        assert all(c.length == 3 for c in caches)
        model._forward_cached(np.array([[4]]), caches)
        assert all(c.length == 4 for c in caches)

    def test_gqa_cache_smaller(self):
        base = ModelConfig(arch="llama", hidden_size=64, num_layers=1,
                           num_heads=8, vocab_size=256, max_seq_len=64)
        gqa = ModelConfig(arch="llama", hidden_size=64, num_layers=1,
                          num_heads=8, num_kv_heads=2, vocab_size=256,
                          max_seq_len=64)
        sizes = {}
        for label, cfg in (("mha", base), ("gqa", gqa)):
            model = GPTModel(cfg, seed=0)
            caches = [KVCache() for _ in model.layers]
            model._forward_cached(np.arange(16)[None], caches)
            sizes[label] = sum(c.memory_bytes() for c in caches)
        assert sizes["gqa"] == sizes["mha"] // 4  # 8 -> 2 kv heads

    @pytest.mark.parametrize("arch", ["neox", "llama"])
    @pytest.mark.parametrize("kv_heads", [1, 2, 4, 8])
    def test_cached_parity_across_arch_and_gqa(self, arch, kv_heads):
        """Cached and uncached greedy decode agree for every family and
        every GQA grouping, including MHA (kv == heads) and MQA (1)."""
        cfg = ModelConfig(arch=arch, hidden_size=64, num_layers=2,
                          num_heads=8, num_kv_heads=kv_heads,
                          vocab_size=256, max_seq_len=64)
        model = GPTModel(cfg, seed=3)
        prompt = np.array([5, 11, 42])
        np.testing.assert_array_equal(
            model.generate(prompt, 16),
            model.generate(prompt, 16, use_cache=True))

    def test_cache_fallback_beyond_context(self):
        """Prompts near max_seq_len fall back to windowed decoding."""
        model = GPTModel(preset("tiny-llama"), seed=0)  # max_seq_len 64
        prompt = np.arange(60) % 512
        out = model.generate(prompt, 10, use_cache=True)
        assert len(out) == 70

    def test_empty_prompt_rejected(self):
        model = GPTModel(preset("tiny-llama"), seed=0)
        with pytest.raises(ValueError):
            model.generate(np.array([], dtype=np.int64), 4, use_cache=True)

    def test_empty_cache_reports_zero(self):
        c = KVCache()
        assert c.length == 0
        assert c.memory_bytes() == 0


class TestStopToken:
    """generate(eos_id=...) terminates decoding early in both paths."""

    @pytest.mark.parametrize("use_cache", [False, True])
    def test_stops_at_eos(self, use_cache):
        model = GPTModel(preset("tiny-neox"), seed=0)
        prompt = np.array([9, 2, 7])
        full = model.generate(prompt, 12, use_cache=use_cache)
        eos = int(full[len(prompt) + 2])
        out = model.generate(prompt, 12, use_cache=use_cache, eos_id=eos)
        assert int(out[-1]) == eos
        assert len(out) < len(full)
        np.testing.assert_array_equal(out, full[:len(out)])

    def test_cached_and_uncached_agree_with_eos(self):
        model = GPTModel(preset("tiny-llama"), seed=0)
        prompt = np.array([4, 4, 8])
        eos = int(model.generate(prompt, 8)[-1])
        np.testing.assert_array_equal(
            model.generate(prompt, 8, eos_id=eos),
            model.generate(prompt, 8, use_cache=True, eos_id=eos))

    def test_unseen_eos_is_inert(self):
        model = GPTModel(preset("tiny-llama"), seed=0)
        prompt = np.array([1])
        np.testing.assert_array_equal(
            model.generate(prompt, 6, eos_id=-5),
            model.generate(prompt, 6))


class TestCheckpointing:
    def test_model_roundtrip(self, tmp_path):
        model = GPTModel(preset("tiny-neox"), seed=7)
        path = save_checkpoint(model, tmp_path / "model")
        assert path.suffix == ".npz"
        loaded = load_checkpoint(path)
        ids = np.arange(10)[None]
        np.testing.assert_allclose(loaded(ids).data, model(ids).data,
                                   atol=1e-12)
        assert loaded.config == model.config

    def test_roundtrip_preserves_gqa_config(self, tmp_path):
        cfg = ModelConfig(arch="llama", hidden_size=64, num_layers=2,
                          num_heads=8, num_kv_heads=4, vocab_size=256,
                          max_seq_len=32)
        path = save_checkpoint(GPTModel(cfg, seed=0), tmp_path / "gqa")
        assert load_checkpoint(path).config.num_kv_heads == 4

    def test_not_a_checkpoint_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, a=np.ones(3))
        with pytest.raises(ValueError):
            load_checkpoint(path)

    def test_tokenizer_roundtrip(self, tmp_path, tok_and_texts):
        tok, _ = tok_and_texts
        path = save_tokenizer(tok, tmp_path / "tok")
        loaded = load_tokenizer(path)
        text = "the band gap of GaAs"
        np.testing.assert_array_equal(loaded.encode(text), tok.encode(text))

    def test_unigram_tokenizer_roundtrip(self, tmp_path):
        tok = UnigramTokenizer().train(["band gap energy"] * 10, 280)
        loaded = load_tokenizer(save_tokenizer(tok, tmp_path / "spm"))
        assert loaded.decode(loaded.encode("band gap")) == "band gap"

    def test_untrained_tokenizer_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_tokenizer(BPETokenizer(), tmp_path / "raw")


class TestPerplexity:
    def test_training_reduces_perplexity(self, tok_and_texts, trained):
        tok, _ = tok_and_texts
        held = [d.text for d in AbstractGenerator(seed=99).sample(8)]
        fresh = GPTModel(preset("tiny-llama"), seed=0)
        assert perplexity(trained, tok, held) < \
            0.5 * perplexity(fresh, tok, held)

    def test_untrained_near_uniform(self, tok_and_texts):
        tok, _ = tok_and_texts
        model = GPTModel(preset("tiny-llama"), seed=0)
        held = [d.text for d in AbstractGenerator(seed=99).sample(4)]
        ppl = perplexity(model, tok, held)
        assert 0.5 * 512 < ppl < 2.0 * 512  # ~vocab size

    def test_bpc_comparable_across_tokenizers(self, tok_and_texts, trained):
        """BPC is the cross-tokenizer metric (ppl is not)."""
        tok, texts = tok_and_texts
        held = [d.text for d in AbstractGenerator(seed=99).sample(6)]
        bpc = bits_per_character(trained, tok, held)
        assert 0.3 < bpc < 10.0

    def test_empty_inputs_rejected(self, tok_and_texts, trained):
        tok, _ = tok_and_texts
        with pytest.raises(ValueError):
            perplexity(trained, tok, [])
        with pytest.raises(ValueError):
            bits_per_character(trained, tok, [])

    def test_max_docs_limits_work(self, tok_and_texts, trained):
        tok, _ = tok_and_texts
        held = [d.text for d in AbstractGenerator(seed=99).sample(10)]
        a = perplexity(trained, tok, held, max_docs=3)
        b = perplexity(trained, tok, held[:3])
        assert a == b


class TestSamplingStrategies:
    def test_top_k_restricts_support(self):
        model = GPTModel(preset("tiny-llama"), seed=0)
        prompt = np.array([1, 2, 3])
        with np.errstate(all="ignore"):
            from repro.models.tensor import no_grad
            with no_grad():
                logits = model(prompt[None]).data[0, -1]
        top2 = set(np.argsort(logits)[-2:].tolist())
        seen = set()
        for seed in range(12):
            out = model.generate(prompt, 1, temperature=1.0, top_k=2,
                                 rng=np.random.default_rng(seed))
            seen.add(int(out[-1]))
        assert seen <= top2

    def test_top_p_limits_to_nucleus(self):
        model = GPTModel(preset("tiny-llama"), seed=0)
        prompt = np.array([4, 5])
        # A very small nucleus behaves like (near-)greedy sampling.
        greedy = model.generate(prompt, 4)
        nucleus = model.generate(prompt, 4, temperature=0.7, top_p=1e-9,
                                 rng=np.random.default_rng(0))
        np.testing.assert_array_equal(nucleus, greedy)

    def test_sampling_args_validated(self):
        model = GPTModel(preset("tiny-llama"), seed=0)
        with pytest.raises(ValueError):
            model.generate(np.array([1]), 2, top_k=-1)
        with pytest.raises(ValueError):
            model.generate(np.array([1]), 2, top_p=0.0)

    def test_cached_sampling_with_filters_identical(self):
        model = GPTModel(preset("tiny-llama"), seed=0)
        prompt = np.array([7, 8, 9])
        kw = dict(temperature=1.2, top_k=8, top_p=0.9)
        a = model.generate(prompt, 8, rng=np.random.default_rng(3), **kw)
        b = model.generate(prompt, 8, rng=np.random.default_rng(3),
                           use_cache=True, **kw)
        np.testing.assert_array_equal(a, b)

"""Tests for the evaluation harness: tasks, scoring, runner."""

import numpy as np
import pytest

from repro.data import AbstractGenerator, PackedDataset
from repro.evalharness import (EvalRunner, MCQuestion, TASK_NAMES, Task,
                               TaskRegistry, build_benchmark_suite,
                               build_task, evaluate_task, fewshot_prefix,
                               score_question)
from repro.models import GPTModel, preset
from repro.tokenizers import BPETokenizer
from repro.training import Trainer, TrainerConfig


class StubModel:
    """Scores continuations by a fixed per-token preference table."""

    def __init__(self, preferred: str):
        self.preferred = preferred

    def loglikelihood(self, context, continuation):
        # Higher likelihood when the continuation matches the preferred ids.
        target = np.asarray(continuation)
        score = -float(np.abs(target - 7).mean())
        return score, False


class StubTokenizer:
    def encode(self, text, add_special=False):
        if "good" in text:
            return np.array([7, 7])
        return np.array([50, 60, 70])


@pytest.fixture(scope="module")
def trained_setup():
    texts = [d.text for d in AbstractGenerator(seed=0).sample(250)]
    tok = BPETokenizer().train(texts, 512)
    ds = PackedDataset.from_texts(texts, tok, seq_len=48)
    model = GPTModel(preset("tiny-llama"), seed=0)
    Trainer(model, ds, TrainerConfig(optimizer="adam", lr=3e-3, batch_size=8,
                                     max_steps=60, eval_every=1000)).train()
    return model, tok


class TestMCQuestion:
    def test_valid(self):
        q = MCQuestion("q", ("a", "b"), 1)
        assert q.render_with_answer() == "q b"

    def test_bad_answer_index(self):
        with pytest.raises(ValueError):
            MCQuestion("q", ("a", "b"), 2)

    def test_needs_two_choices(self):
        with pytest.raises(ValueError):
            MCQuestion("q", ("a",), 0)


class TestTask:
    def test_fewshot_sampling(self):
        t = build_task("sciq", n_questions=10, n_fewshot=6)
        ex = t.fewshot_examples(3, seed=1)
        assert len(ex) == 3
        assert t.fewshot_examples(3, seed=1)[0].query == ex[0].query

    def test_fewshot_too_many(self):
        t = build_task("sciq", n_questions=10, n_fewshot=4)
        with pytest.raises(ValueError):
            t.fewshot_examples(5)

    def test_zero_shots(self):
        t = build_task("sciq", n_questions=5)
        assert t.fewshot_examples(0) == []

    def test_empty_task_rejected(self):
        with pytest.raises(ValueError):
            Task("empty", [], [], 0.25)

    def test_registry(self):
        reg = TaskRegistry()
        t = build_task("piqa", n_questions=5)
        reg.register(t)
        assert reg.get("piqa") is t
        with pytest.raises(ValueError):
            reg.register(t)
        with pytest.raises(KeyError):
            reg.get("mmlu")


class TestBenchmarks:
    def test_all_nine_tasks(self):
        suite = build_benchmark_suite(n_questions=6)
        assert set(suite.names()) == set(TASK_NAMES)
        assert len(TASK_NAMES) == 9

    def test_deterministic_generation(self):
        a = build_task("arc_e", n_questions=8, seed=3)
        b = build_task("arc_e", n_questions=8, seed=3)
        assert [q.query for q in a.questions] == [q.query for q in b.questions]

    def test_different_tasks_differ(self):
        a = build_task("arc_e", n_questions=8)
        b = build_task("arc_c", n_questions=8)
        assert [q.query for q in a.questions] != [q.query for q in b.questions]

    def test_piqa_binary(self):
        t = build_task("piqa", n_questions=10)
        assert all(len(q.choices) == 2 for q in t.questions)
        assert t.random_baseline == pytest.approx(0.5)

    def test_answers_not_always_first(self):
        t = build_task("sciq", n_questions=30)
        answers = {q.answer for q in t.questions}
        assert len(answers) > 1  # shuffled positions

    def test_unknown_task(self):
        with pytest.raises(ValueError):
            build_task("mmlu")

    def test_correct_choice_in_choices(self):
        for name in TASK_NAMES:
            for q in build_task(name, n_questions=5).questions:
                assert q.choices[q.answer]  # non-empty correct answer


class TestScoring:
    def test_score_question_prefers_likely_choice(self):
        q = MCQuestion("pick", ("good", "bad long answer"), 0)
        pred = score_question(StubModel("good"), StubTokenizer(), q)
        assert pred == 0

    def test_fewshot_prefix_contains_answers(self):
        t = build_task("sciq", n_questions=5, n_fewshot=4)
        ex = t.fewshot_examples(2, seed=0)
        prefix = fewshot_prefix(ex)
        for e in ex:
            assert e.choices[e.answer] in prefix

    def test_evaluate_task_stderr(self):
        q = MCQuestion("pick", ("good", "badbad"), 0)
        task = Task("stub", [q] * 16, [q], 0.5)
        res = evaluate_task(StubModel("good"), StubTokenizer(), task)
        assert res.accuracy == 1.0
        assert res.stderr == 0.0
        assert res.n == 16

    def test_stderr_formula(self):
        q_good = MCQuestion("pick", ("good", "badbad"), 0)
        q_bad = MCQuestion("pick", ("badbad", "good"), 0)
        task = Task("stub", [q_good, q_bad] * 8, [q_good], 0.5)
        res = evaluate_task(StubModel("good"), StubTokenizer(), task)
        assert res.accuracy == 0.5
        assert res.stderr == pytest.approx(np.sqrt(0.25 / 16))


class TestWithTrainedModel:
    def test_easy_tasks_beat_chance(self, trained_setup):
        """A materials-LM beats chance on OOD-distractor tasks (Fig 14)."""
        model, tok = trained_setup
        runner = EvalRunner(build_benchmark_suite(n_questions=20))
        rep = runner.run(model, tok, tasks=["sciq", "arc_e"])
        for name in ("sciq", "arc_e"):
            r = rep.get(name)
            assert r.above_chance, f"{name}: {r}"

    def test_hard_tasks_near_chance(self, trained_setup):
        """In-domain distractors land near the random baseline."""
        model, tok = trained_setup
        runner = EvalRunner(build_benchmark_suite(n_questions=20))
        rep = runner.run(model, tok, tasks=["ht_cm", "ht_ccs"])
        for name in ("ht_cm", "ht_ccs"):
            r = rep.get(name)
            assert abs(r.accuracy - r.random_baseline) < 0.3

    def test_report_interface(self, trained_setup):
        model, tok = trained_setup
        runner = EvalRunner(build_benchmark_suite(n_questions=8))
        rep = runner.run(model, tok, model_name="m", tasks=["sciq"],
                         shots=(0, 3))
        assert set(rep.results) == {("sciq", 0), ("sciq", 3)}
        assert 0 <= rep.mean_accuracy(0) <= 1
        assert len(rep.rows()) == 2
        with pytest.raises(KeyError):
            rep.get("sciq", 5)

    def test_untrained_model_near_chance_everywhere(self):
        texts = [d.text for d in AbstractGenerator(seed=5).sample(60)]
        tok = BPETokenizer().train(texts, 400)
        model = GPTModel(preset("tiny-neox"), seed=3)
        runner = EvalRunner(build_benchmark_suite(n_questions=16))
        rep = runner.run(model, tok, tasks=["arc_e"])
        r = rep.get("arc_e")
        assert abs(r.accuracy - r.random_baseline) < 0.35

"""Tests for the BPE (HF) and unigram (SPM) tokenizers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tokenizers import (SPECIAL_TOKENS, BPETokenizer, UnigramTokenizer,
                              build_tokenizer)

CORPUS = [
    "the band gap of GaAs is 1.42 eV at room temperature",
    "perovskite solar cells show great promise for energy",
    "the band gap of Si is 1.12 eV and depends on strain",
    "LiFePO4 is a common cathode material for batteries",
    "density functional theory predicts the band structure",
    "we report synthesis of novel two dimensional materials",
] * 8


@pytest.fixture(scope="module")
def bpe():
    return BPETokenizer().train(CORPUS, 320)


@pytest.fixture(scope="module")
def spm():
    return UnigramTokenizer().train(CORPUS, 320)


class TestBPE:
    def test_roundtrip_in_domain(self, bpe):
        for text in ["the band gap", "solar cells", "GaAs is 1.42 eV"]:
            assert bpe.decode(bpe.encode(text)) == text

    def test_roundtrip_unseen_bytes(self, bpe):
        """Byte fallback: any UTF-8 text round-trips even if unseen."""
        for text in ["Zr3(PO4)2", "αβγ-phase", "Ω resistance", "tab\there"]:
            assert bpe.decode(bpe.encode(text)) == text

    def test_roundtrip_multiple_spaces(self, bpe):
        text = "a  b   c"
        assert bpe.decode(bpe.encode(text)) == text

    def test_special_tokens_added(self, bpe):
        ids = bpe.encode("band gap", add_special=True)
        assert ids[0] == SPECIAL_TOKENS["<bos>"]
        assert ids[-1] == SPECIAL_TOKENS["<eos>"]
        assert bpe.decode(ids) == "band gap"

    def test_vocab_size_respected(self, bpe):
        assert bpe.vocab_size <= 320
        assert bpe.vocab_size > 260  # learned some merges

    def test_compression_improves_with_vocab(self):
        small = BPETokenizer().train(CORPUS, 262)
        large = BPETokenizer().train(CORPUS, 400)
        text = " ".join(CORPUS[:4])
        assert len(large.encode(text)) < len(small.encode(text))

    def test_untrained_raises(self):
        with pytest.raises(RuntimeError):
            BPETokenizer().encode("x")

    def test_vocab_too_small_rejected(self):
        with pytest.raises(ValueError):
            BPETokenizer().train(CORPUS, 100)

    def test_deterministic_training(self):
        a = BPETokenizer().train(CORPUS, 300)
        b = BPETokenizer().train(CORPUS, 300)
        text = CORPUS[0]
        np.testing.assert_array_equal(a.encode(text), b.encode(text))

    def test_frequent_word_becomes_single_token(self, bpe):
        # 'the' appears constantly; with 64 merges it should be 1-2 tokens.
        assert len(bpe.encode("the")) <= 2

    def test_stats(self, bpe):
        s = bpe.stats(CORPUS[:6])
        assert s.total_tokens > 0
        assert s.chars_per_token > 1.0

    def test_token_strings_cover_vocab(self, bpe):
        table = bpe.token_strings()
        assert len(table) == bpe.vocab_size

    @settings(max_examples=25, deadline=None)
    @given(st.text(alphabet=st.characters(codec="utf-8"), max_size=40))
    def test_property_roundtrip_any_utf8(self, text):
        tok = BPETokenizer().train(["seed text for training"], 262)
        assert tok.decode(tok.encode(text)) == text


class TestUnigram:
    def test_roundtrip_in_domain(self, spm):
        for text in ["the band gap", "solar cells", "cathode material"]:
            assert spm.decode(spm.encode(text)) == text

    def test_unknown_char_maps_to_unk(self, spm):
        ids = spm.encode("Ω")
        assert SPECIAL_TOKENS["<unk>"] in ids

    def test_known_chars_never_unk(self, spm):
        ids = spm.encode("band structure theory")
        assert SPECIAL_TOKENS["<unk>"] not in ids

    def test_vocab_size_close_to_target(self, spm):
        assert spm.vocab_size <= 330
        assert spm.vocab_size >= 100

    def test_special_tokens(self, spm):
        ids = spm.encode("band", add_special=True)
        assert ids[0] == SPECIAL_TOKENS["<bos>"] and ids[-1] == SPECIAL_TOKENS["<eos>"]

    def test_viterbi_picks_high_probability_segmentation(self, spm):
        """Frequent full words should be segmented as few pieces."""
        n_band = len(spm.encode("band"))
        n_rare = len(spm.encode("bnad"))  # scrambled, must fragment
        assert n_band <= n_rare

    def test_untrained_raises(self):
        with pytest.raises(RuntimeError):
            UnigramTokenizer().encode("x")

    def test_empty_corpus_rejected(self):
        with pytest.raises(ValueError):
            UnigramTokenizer().train([], 300)

    def test_vocab_too_small_rejected(self):
        with pytest.raises(ValueError):
            UnigramTokenizer().train(CORPUS, 2)

    def test_empty_string_encodes_empty(self, spm):
        assert len(spm.encode("")) == 0

    def test_deterministic_training(self):
        a = UnigramTokenizer().train(CORPUS, 300)
        b = UnigramTokenizer().train(CORPUS, 300)
        np.testing.assert_array_equal(a.encode(CORPUS[0]), b.encode(CORPUS[0]))

    def test_spm_vs_bpe_token_counts_differ(self, bpe, spm):
        """Different algorithms segment differently (basis of Fig 13 note:
        losses across tokenizers are incomparable)."""
        text = " ".join(CORPUS[:6])
        assert len(bpe.encode(text)) != len(spm.encode(text))


class TestFactoryAndCorpus:
    def test_build_tokenizer(self):
        assert isinstance(build_tokenizer("hf"), BPETokenizer)
        assert isinstance(build_tokenizer("spm"), UnigramTokenizer)
        with pytest.raises(ValueError):
            build_tokenizer("wordpiece")

    def test_family_labels(self):
        assert BPETokenizer.family == "hf"
        assert UnigramTokenizer.family == "spm"

    def test_encode_corpus_adds_specials(self, bpe):
        docs = bpe.encode_corpus(CORPUS[:3])
        assert len(docs) == 3
        for d in docs:
            assert d[0] == SPECIAL_TOKENS["<bos>"]
            assert d[-1] == SPECIAL_TOKENS["<eos>"]

"""Tests for speculative decoding: batched verification, rejection
sampling, rollback via pool truncation, and the engine integration.

The correctness bar mirrors the batched-decode one: the verification
forward always runs the exact grouped kernel, so its logits are
**bitwise identical** to per-request sequential ``_forward_cached``
decoding across NeoX/LLaMA, GQA, and flash configs — which makes greedy
speculative output bitwise equal to plain greedy decoding no matter how
bad the draft proposals are.  Sampled speculative output matches the
warped target distribution (seeded statistical test).
"""

import numpy as np
import pytest

from repro.models import (GPTModel, KVCache, ModelConfig, PackedKVPool,
                          preset)
from repro.models.speculative import (DRAFT_SOURCES, ModelDraft, NGramDraft,
                                      SamplingParams, accept_tokens,
                                      draft_model_config, request_rng,
                                      spec_decode_step, warp_probs)
from repro.serving import (Request, ServingConfig, ServingEngine,
                           SpecDecodeConfig)


def tiny_config(arch="llama", kv_heads=None, flash=0):
    return ModelConfig(arch=arch, hidden_size=64, num_layers=2,
                       num_heads=4, num_kv_heads=kv_heads, vocab_size=512,
                       max_seq_len=64, flash_attention=flash,
                       name=f"tiny-{arch}-kv{kv_heads}-f{flash}")


def make_requests(config, n=5, tokens=10, seed=2, **kw):
    rng = np.random.default_rng(seed)
    return [Request(request_id=i,
                    prompt=rng.integers(0, config.vocab_size,
                                        size=int(rng.integers(6, 14))),
                    max_new_tokens=tokens, arrival_time=0.001 * i, **kw)
            for i in range(n)]


@pytest.mark.parametrize("arch", ["neox", "llama"])
@pytest.mark.parametrize("kv_heads", [None, 2])
@pytest.mark.parametrize("flash", [0, 1])
class TestVerifyBatched:
    def test_matches_sequential_steps(self, arch, kv_heads, flash):
        """verify_step_batched == one-token-at-a-time _forward_cached.

        Logits agree to accumulation-order noise (the verify window is
        one matmul over k+1 rows) and argmax agrees exactly — even for
        flash configs, because verification always uses the exact
        grouped kernel (flash_decode_forward reassociates the softmax,
        which would break the greedy-parity guarantee tested below).
        """
        config = tiny_config(arch, kv_heads, flash)
        model = GPTModel(config, seed=0)
        rng = np.random.default_rng(1)
        lengths = (5, 9, 13)
        prompts = [rng.integers(0, config.vocab_size, size=n)
                   for n in lengths]
        span = 4
        blocks = rng.integers(0, config.vocab_size,
                              size=(len(prompts), span))

        pool = PackedKVPool.for_model(config, num_slots=len(prompts),
                                      block_tokens=16)
        slots = []
        for prompt in prompts:
            slot = pool.acquire()
            model._forward_cached(prompt[None], pool.slot_caches(slot))
            slots.append(slot)
        batched = model.verify_step_batched(blocks, pool, slots)

        for i, prompt in enumerate(prompts):
            caches = [KVCache() for _ in model.layers]
            model._forward_cached(prompt[None], caches)
            for j in range(span):
                step = np.array([[blocks[i, j]]], dtype=np.int64)
                logits = model._forward_cached(step, caches)
                np.testing.assert_allclose(batched[i, j],
                                           logits.data[0, -1],
                                           rtol=1e-9, atol=1e-12)
                assert int(batched[i, j].argmax()) \
                    == int(logits.data[0, -1].argmax())
            # The pool holds prompt + span positions afterwards.
            assert pool.length(0, slots[i]) == prompt.size + span


@pytest.mark.parametrize("arch", ["neox", "llama"])
@pytest.mark.parametrize("kv_heads", [None, 2])
@pytest.mark.parametrize("flash", [0, 1])
@pytest.mark.parametrize("draft", DRAFT_SOURCES)
class TestGreedyEngineParity:
    def test_spec_outputs_bitwise_equal_plain(self, arch, kv_heads, flash,
                                              draft):
        """Greedy spec == greedy plain for every arch/GQA/flash/draft."""
        config = tiny_config(arch, kv_heads, flash)
        model = GPTModel(config, seed=0)
        plain = ServingEngine(model, ServingConfig(
            num_blocks=64, block_size=8,
            max_batch_size=4)).run(make_requests(config))
        spec = ServingEngine(model, ServingConfig(
            num_blocks=64, block_size=8, max_batch_size=4,
            spec_decode=SpecDecodeConfig(k=3, draft=draft))).run(
                make_requests(config))
        assert sorted(plain.outputs) == sorted(spec.outputs)
        for i in plain.outputs:
            np.testing.assert_array_equal(plain.outputs[i],
                                          spec.outputs[i])
        assert spec.metrics.spec_steps > 0
        assert spec.metrics.draft_proposed > 0


class TestAcceptTokens:
    VOCAB = 8

    def _logits(self, argmaxes):
        rows = np.zeros((len(argmaxes), self.VOCAB))
        for j, a in enumerate(argmaxes):
            rows[j, a] = 5.0
        return rows

    def test_greedy_all_accepted_gets_bonus(self):
        logits = self._logits([3, 4, 5, 6])
        emitted, accepted = accept_tokens(
            logits, np.array([3, 4, 5]), [None] * 3, SamplingParams(),
            None, limit=10, eos_id=None)
        assert emitted == [3, 4, 5, 6] and accepted == 3

    def test_greedy_first_mismatch_emits_target_argmax(self):
        logits = self._logits([3, 4, 5, 6])
        emitted, accepted = accept_tokens(
            logits, np.array([3, 7, 5]), [None] * 3, SamplingParams(),
            None, limit=10, eos_id=None)
        assert emitted == [3, 4] and accepted == 1

    def test_limit_clips_emissions(self):
        logits = self._logits([3, 4, 5, 6])
        emitted, accepted = accept_tokens(
            logits, np.array([3, 4, 5]), [None] * 3, SamplingParams(),
            None, limit=2, eos_id=None)
        assert emitted == [3, 4]

    def test_eos_stops_emission(self):
        logits = self._logits([3, 4, 5, 6])
        emitted, accepted = accept_tokens(
            logits, np.array([3, 4, 5]), [None] * 3, SamplingParams(),
            None, limit=10, eos_id=4)
        assert emitted == [3, 4]

    def test_sampled_requires_rng(self):
        logits = self._logits([3, 4])
        with pytest.raises(ValueError, match="rng"):
            accept_tokens(logits, np.array([3]), [None],
                          SamplingParams(temperature=1.0), None,
                          limit=10, eos_id=None)


class TestNGramDraft:
    def test_proposes_continuation_of_last_ngram(self):
        draft = NGramDraft(n=3)
        # ...1 2 3 4 5... earlier, context ends in 1 2 3 -> propose 4 5.
        ctx = np.array([9, 1, 2, 3, 4, 5, 7, 1, 2, 3], dtype=np.int64)
        proposals, q = draft.propose([0], [ctx], 2, [SamplingParams()],
                                     [None])
        np.testing.assert_array_equal(proposals[0], [4, 5])
        assert q == [None]

    def test_no_match_falls_back(self):
        draft = NGramDraft(n=3)
        ctx = np.arange(8, dtype=np.int64)
        proposals, _ = draft.propose([0], [ctx], 3, [SamplingParams()],
                                     [None])
        assert proposals[0].shape == (3,)  # padded, never empty

    def test_most_recent_occurrence_wins(self):
        draft = NGramDraft(n=2)
        #     [1 2] -> 5 early,  [1 2] -> 9 later: later wins.
        ctx = np.array([1, 2, 5, 1, 2, 9, 4, 1, 2], dtype=np.int64)
        proposals, _ = draft.propose([0], [ctx], 1, [SamplingParams()],
                                     [None])
        assert proposals[0][0] == 9


class TestTruncate:
    def _pool(self):
        pool = PackedKVPool(num_layers=1, num_kv_heads=2, head_dim=4,
                            num_slots=2, max_len=16, block_tokens=8)
        slot = pool.acquire()
        k = np.ones((1, 2, 6, 4))
        v = 2 * np.ones((1, 2, 6, 4))
        pool.append(0, slot, k, v)
        return pool, slot

    def test_truncate_shrinks_and_zeroes_tail(self):
        pool, slot = self._pool()
        pool.truncate(slot, 4)
        assert pool.length(0, slot) == 4
        k, v = pool.gather(0, [slot], 6)
        assert not k[0, :, 4:].any() and not v[0, :, 4:].any()
        assert k[0, :, :4].all()

    def test_truncate_refuses_unleased_slot(self):
        pool, slot = self._pool()
        pool.release(slot)
        with pytest.raises(ValueError, match="leased"):
            pool.truncate(slot, 2)

    def test_truncate_refuses_shared_slot(self):
        pool, slot = self._pool()
        pool.retain(slot)
        with pytest.raises(ValueError, match="shared"):
            pool.truncate(slot, 2)
        pool.release(slot)
        pool.truncate(slot, 2)  # sole holder again: fine

    def test_truncate_range_checked(self):
        pool, slot = self._pool()
        with pytest.raises(ValueError):
            pool.truncate(slot, 7)
        with pytest.raises(ValueError):
            pool.truncate(slot, -1)

    def test_kvcache_truncate(self):
        cache = KVCache()
        cache.append(np.ones((1, 2, 6, 4)), np.ones((1, 2, 6, 4)))
        cache.truncate(3)
        assert cache.length == 3
        with pytest.raises(ValueError):
            cache.truncate(10)


class TestRollbackInvariant:
    def test_slot_length_matches_emissions(self):
        """After a spec step, slot i holds pre_len + len(emitted)."""
        config = tiny_config()
        model = GPTModel(config, seed=0)
        rng = np.random.default_rng(4)
        prompts = [rng.integers(0, config.vocab_size, size=8)
                   for _ in range(3)]
        pool = PackedKVPool.for_model(config, num_slots=3,
                                      block_tokens=16)
        slots, outputs = [], []
        for prompt in prompts:
            slot = pool.acquire()
            logits = model._forward_cached(prompt[None],
                                           pool.slot_caches(slot))
            slots.append(slot)
            outputs.append([int(logits.data[0, -1].argmax())])
        draft = NGramDraft()
        for _ in range(4):
            contexts = [np.concatenate([prompts[i],
                                        np.asarray(outputs[i])])
                        for i in range(3)]
            results = spec_decode_step(
                model, pool, slots, draft, contexts,
                [SamplingParams()] * 3, [None] * 3, 3, [100] * 3,
                [None] * 3)
            for i, (emitted, _) in enumerate(results):
                pre = prompts[i].size + len(outputs[i]) - 1
                outputs[i].extend(emitted)
                for layer in range(config.num_layers):
                    assert pool.length(layer, slots[i]) \
                        == pre + len(emitted)


@pytest.mark.parametrize("draft", DRAFT_SOURCES)
class TestSampledDistribution:
    def test_first_emission_matches_warped_target(self, draft):
        """Spec-sampled tokens follow the warped target distribution.

        Total-variation distance between ~2k speculative first
        emissions and the *exact* warped next-token distribution, with
        top_k shrinking the support so the test has power.
        """
        config = tiny_config()
        model = GPTModel(config, seed=3)
        batch, rounds, k = 24, 80, 3
        params = SamplingParams(temperature=0.9, top_k=8)
        rng = np.random.default_rng(5)
        prompt = rng.integers(0, config.vocab_size, size=12)

        caches = [KVCache() for _ in model.layers]
        logits = model._forward_cached(prompt[None], caches)
        t0 = int(logits.data[0, -1].argmax())
        logits = model._forward_cached(np.array([[t0]], dtype=np.int64),
                                       caches)
        target = warp_probs(logits.data[0, -1], params)

        pool = PackedKVPool.for_model(config, num_slots=batch,
                                      block_tokens=16)
        slots = []
        for _ in range(batch):
            slot = pool.acquire()
            model._forward_cached(prompt[None], pool.slot_caches(slot))
            slots.append(slot)
        if draft == "ngram":
            proposer = NGramDraft()
        else:
            proposer = ModelDraft(
                GPTModel(draft_model_config(config, num_layers=1),
                         seed=7), num_slots=batch, block_tokens=16)
        keys = list(range(batch))
        context = np.concatenate([prompt, [t0]]).astype(np.int64)
        for key in keys:
            proposer.start(key, prompt)
        counts = np.zeros(config.vocab_size)
        for r in range(rounds):
            rngs = [request_rng(10_000 + r * batch + i)
                    for i in range(batch)]
            results = spec_decode_step(
                model, pool, slots, proposer, [context] * batch,
                [params] * batch, rngs, k, [1] * batch, [None] * batch,
                keys=keys)
            for emitted, _ in results:
                counts[emitted[0]] += 1
            # Rewind every slot (and the draft) to the shared prefix so
            # the next round samples the same conditional distribution.
            for slot in slots:
                pool.truncate(slot, prompt.size)
            proposer.sync(keys, [0] * batch, [prompt.size] * batch)
        empirical = counts / counts.sum()
        tv = 0.5 * np.abs(empirical - target).sum()
        assert tv < 0.05, f"TV distance {tv:.4f} vs warped target"


class TestSpecEngineUnderPressure:
    def test_tight_pool_keeps_greedy_parity(self):
        """Preemptions + the degrade-to-plain guard preserve outputs."""
        config = tiny_config()
        model = GPTModel(config, seed=0)
        plain = ServingEngine(model, ServingConfig(
            num_blocks=256, block_size=8, max_batch_size=4)).run(
                make_requests(config, tokens=16))
        tight = ServingEngine(model, ServingConfig(
            num_blocks=12, block_size=8, max_batch_size=4,
            spec_decode=SpecDecodeConfig(k=4, draft="ngram"))).run(
                make_requests(config, tokens=16))
        assert tight.metrics.preemptions > 0
        for i in plain.outputs:
            np.testing.assert_array_equal(plain.outputs[i],
                                          tight.outputs[i])

    def test_metrics_and_trace_record_acceptance(self):
        config = tiny_config()
        model = GPTModel(config, seed=0)
        result = ServingEngine(model, ServingConfig(
            num_blocks=64, block_size=8, max_batch_size=4,
            spec_decode=SpecDecodeConfig(k=3, draft="ngram"))).run(
                make_requests(config))
        m = result.metrics
        assert m.spec_steps > 0
        assert m.draft_proposed >= m.draft_accepted >= 0
        assert m.acceptance_rate == pytest.approx(
            m.draft_accepted / m.draft_proposed)
        stages = {e.name.split("/", 1)[1]
                  for lane in result.lanes["engine"].values()
                  for e in lane if "/" in e.name}
        assert stages & {"spec-accept", "spec-reject"}
        rows = dict(m.rows())
        assert "speculative steps" in rows

    def test_spec_off_metrics_stay_zero(self):
        config = tiny_config()
        model = GPTModel(config, seed=0)
        result = ServingEngine(model, ServingConfig(
            num_blocks=64, block_size=8, max_batch_size=4)).run(
                make_requests(config))
        assert result.metrics.spec_steps == 0
        assert result.metrics.acceptance_rate == 0.0
        assert "speculative steps" not in dict(result.metrics.rows())


class TestSpecDecodeConfig:
    def test_validates(self):
        with pytest.raises(ValueError):
            SpecDecodeConfig(k=0)
        with pytest.raises(ValueError):
            SpecDecodeConfig(draft="oracle")
        with pytest.raises(ValueError):
            SpecDecodeConfig(acceptance=1.5)

    def test_draft_config_shares_vocab(self):
        config = preset("tiny-llama")
        draft = draft_model_config(config, num_layers=1)
        assert draft.vocab_size == config.vocab_size
        assert draft.max_seq_len == config.max_seq_len
        assert draft.num_layers == 1

    def test_cluster_requires_acceptance(self):
        from repro.serving import ClusterConfig, ClusterSimulator
        config = preset("small-llama")
        bad = ClusterConfig(num_nodes=1, serving=ServingConfig(
            spec_decode=SpecDecodeConfig(k=4)))
        with pytest.raises(ValueError, match="acceptance"):
            ClusterSimulator(config, bad)

    def test_cluster_spec_runs_and_counts(self):
        from repro.serving import (ClusterConfig, ClusterSimulator,
                                   WorkloadConfig, synthesize_workload)
        config = preset("small-llama")
        workload = WorkloadConfig(num_requests=24, arrival_rate=100.0,
                                  seed=3)
        spec = ClusterConfig(num_nodes=1, serving=ServingConfig(
            spec_decode=SpecDecodeConfig(k=4, acceptance=0.7)))
        result = ClusterSimulator(config, spec).run(
            synthesize_workload(workload, config))
        assert result.metrics.spec_steps > 0
        assert 0.0 < result.metrics.acceptance_rate <= 1.0
        # Output token counts are workload-determined, not spec-dependent.
        base = ClusterSimulator(config, ClusterConfig(num_nodes=1)).run(
            synthesize_workload(workload, config))
        assert result.metrics.total_output_tokens \
            == base.metrics.total_output_tokens

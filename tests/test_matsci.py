"""Tests for the scientific downstream task: materials, graphs, GNNs,
embeddings, fusion and embedding analysis."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matsci import (GraphEncoder, MODEL_ZOO, MatSciBERTEmbedder,
                          MaterialsDataset, band_gap_class, build_gnn,
                          cosine_similarities, diagnose_embeddings,
                          evaluate_model, generate_dataset, kmeans,
                          mean_absolute_error, pairwise_distances, pca,
                          predict, silhouette_score, train_regressor, tsne)
from repro.matsci.descriptors import (angle_histogram_descriptor,
                                      chemistry_descriptor,
                                      composition_descriptor,
                                      edge_channel_descriptor)
from repro.matsci.embeddings import GPTFormulaEmbedder
from repro.models import GPTModel, preset
from repro.tokenizers import BPETokenizer


@pytest.fixture(scope="module")
def dataset():
    return generate_dataset(120, seed=0)


@pytest.fixture(scope="module")
def encoder():
    return GraphEncoder()


@pytest.fixture(scope="module")
def tokenizer():
    from repro.data import AbstractGenerator
    texts = [d.text for d in AbstractGenerator(seed=0).sample(100)]
    return BPETokenizer().train(texts, 450)


@pytest.fixture(scope="module")
def trained_gpt(tokenizer):
    """A briefly pre-trained tiny MatGPT (embeddings need training)."""
    from repro.data import AbstractGenerator, PackedDataset
    from repro.training import Trainer, TrainerConfig
    texts = [d.text for d in AbstractGenerator(seed=0).sample(150)]
    ds = PackedDataset.from_texts(texts, tokenizer, seq_len=48)
    model = GPTModel(preset("tiny-llama"), seed=0)
    Trainer(model, ds, TrainerConfig(optimizer="adam", lr=3e-3, batch_size=8,
                                     max_steps=50, eval_every=1000)).train()
    return model


class TestMaterials:
    def test_deterministic(self):
        a = generate_dataset(20, seed=3)
        b = generate_dataset(20, seed=3)
        np.testing.assert_allclose(a.band_gaps(), b.band_gaps())

    def test_gaps_nonnegative(self, dataset):
        assert (dataset.band_gaps() >= 0).all()

    def test_class_structure(self, dataset):
        counts = dataset.class_counts()
        assert counts.get("semiconductor", 0) > 0
        assert set(counts) <= {"conductor", "semiconductor", "insulator"}

    def test_band_gap_class(self):
        assert band_gap_class(0.0) == "conductor"
        assert band_gap_class(1.5) == "semiconductor"
        assert band_gap_class(4.0) == "insulator"

    def test_split(self, dataset):
        train, test = dataset.split(test_fraction=0.25, seed=1)
        assert len(train) + len(test) == len(dataset)
        assert len(test) == 30
        with pytest.raises(ValueError):
            dataset.split(test_fraction=0.0)

    def test_structures_have_atoms(self, dataset):
        for m in dataset.materials[:10]:
            assert m.n_atoms >= 2
            assert m.positions.shape == (m.n_atoms, 3)
            assert m.lattice > 0

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            generate_dataset(0)


class TestDescriptors:
    def test_composition_descriptor_shape(self):
        d = composition_descriptor(("Ga", "As"))
        assert d.shape == (3,)

    def test_edge_descriptor_zero_for_far_atoms(self):
        pos = np.array([[0.0, 0, 0], [100.0, 0, 0]])
        np.testing.assert_allclose(edge_channel_descriptor(pos), 0.0)

    def test_angle_descriptor_normalized(self):
        pos = np.array([[0, 0, 0], [1.5, 0, 0], [0, 1.5, 0]], dtype=float)
        h = angle_histogram_descriptor(pos)
        assert h.sum() == pytest.approx(1.0)

    def test_angle_descriptor_too_few_atoms(self):
        assert angle_histogram_descriptor(np.zeros((2, 3))).sum() == 0.0

    def test_chemistry_descriptor_composition_dependent(self):
        from repro.data import parse_formula
        a = chemistry_descriptor(parse_formula("NaCl"))
        b = chemistry_descriptor(parse_formula("GaAs"))
        assert a != b


class TestGraphEncoder:
    def test_batch_shapes(self, dataset, encoder):
        batch = encoder.encode(dataset.materials[:8])
        assert batch.node_features.shape == (8, 16, 3)
        assert batch.adjacency.shape == (8, 4, 16, 16)
        assert batch.angle_features.shape == (8, 16, 6)
        assert batch.mask.shape == (8, 16)
        assert batch.targets.shape == (8,)

    def test_mask_counts_atoms(self, dataset, encoder):
        m = dataset.materials[0]
        batch = encoder.encode([m])
        assert batch.mask.sum() == min(m.n_atoms, encoder.max_atoms)

    def test_adjacency_symmetric(self, dataset, encoder):
        batch = encoder.encode(dataset.materials[:4])
        np.testing.assert_allclose(batch.adjacency,
                                   np.swapaxes(batch.adjacency, -1, -2),
                                   atol=1e-12)

    def test_empty_rejected(self, encoder):
        with pytest.raises(ValueError):
            encoder.encode([])

    def test_full_mode_richer(self, dataset):
        enc = GraphEncoder(node_feature_mode="full")
        assert enc.node_dim == 6
        batch = enc.encode(dataset.materials[:2])
        assert batch.node_features.shape[-1] == 6

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            GraphEncoder(node_feature_mode="onehot")


class TestGNN:
    def test_zoo_has_four_models(self):
        assert set(MODEL_ZOO) == {"cgcnn", "megnet", "alignn", "mfcgnn"}

    def test_forward_shapes(self, dataset, encoder):
        batch = encoder.encode(dataset.materials[:6])
        for name in MODEL_ZOO:
            model = build_gnn(name, encoder.node_dim, encoder.n_angle_bins)
            out = model(batch)
            assert out.shape == (6,)

    def test_unknown_model(self, encoder):
        with pytest.raises(ValueError):
            build_gnn("schnet", 3, 6)

    def test_training_reduces_mae(self, dataset, encoder):
        batch = encoder.encode(dataset.materials)
        model = build_gnn("cgcnn", encoder.node_dim, encoder.n_angle_bins)
        naive = mean_absolute_error(
            np.full(len(batch.targets), batch.targets.mean()), batch.targets)
        hist = train_regressor(model, batch, epochs=80, val_fraction=0.15)
        final = mean_absolute_error(predict(model, batch), batch.targets)
        assert final < naive
        assert hist.best_epoch >= 0
        assert len(hist.val_mae) == len(hist.train_mae)

    def test_early_stopping_restores_best(self, dataset, encoder):
        batch = encoder.encode(dataset.materials)
        model = build_gnn("mfcgnn", encoder.node_dim, encoder.n_angle_bins,
                          seed=1)
        hist = train_regressor(model, batch, epochs=300, patience=10)
        assert hist.best_epoch < len(hist.train_mae)

    def test_fusion_requires_embeddings(self, dataset, encoder):
        batch = encoder.encode(dataset.materials[:4])
        fused = build_gnn("mfcgnn", encoder.node_dim, encoder.n_angle_bins,
                          embedding_dim=8)
        with pytest.raises(ValueError):
            fused(batch)
        plain = build_gnn("mfcgnn", encoder.node_dim, encoder.n_angle_bins)
        with pytest.raises(ValueError):
            plain(batch, embeddings=np.zeros((4, 8)))

    def test_fusion_forward(self, dataset, encoder):
        batch = encoder.encode(dataset.materials[:4])
        fused = build_gnn("mfcgnn", encoder.node_dim, encoder.n_angle_bins,
                          embedding_dim=8)
        out = fused(batch, embeddings=np.random.default_rng(0).normal(
            size=(4, 8)))
        assert out.shape == (4,)


class TestEmbeddings:
    def test_bert_deterministic(self):
        e = MatSciBERTEmbedder()
        np.testing.assert_allclose(e.embed("GaAs"), e.embed("GaAs"))

    def test_bert_unit_norm(self):
        e = MatSciBERTEmbedder()
        assert np.linalg.norm(e.embed("TiO2")) == pytest.approx(1.0)

    def test_bert_shared_ngrams_correlate(self):
        e = MatSciBERTEmbedder(identity_noise=0.0)
        a, b = e.embed("LiFePO4"), e.embed("NaFePO4")  # share 'FePO4'
        c = e.embed("ZnS")
        assert a @ b > a @ c

    def test_gpt_embedder_caches(self, tokenizer):
        model = GPTModel(preset("tiny-llama"), seed=0)
        emb = GPTFormulaEmbedder(model, tokenizer)
        v1 = emb.embed("GaAs")
        v2 = emb.embed("GaAs")
        assert v1 is v2
        assert v1.shape == (64,)

    def test_embed_many_shape(self, tokenizer):
        model = GPTModel(preset("tiny-llama"), seed=0)
        emb = GPTFormulaEmbedder(model, tokenizer)
        X = emb.embed_many(["GaAs", "TiO2", "NaCl"])
        assert X.shape == (3, 64)
        with pytest.raises(ValueError):
            emb.embed_many([])

    def test_invalid_bert_args(self):
        with pytest.raises(ValueError):
            MatSciBERTEmbedder(dim=1)


class TestFusionExperiment:
    def test_fusion_beats_structure_only(self, tokenizer, trained_gpt):
        """The core Table V claim at reduced scale (fusion never hurts;
        at full benchmark scale it strictly improves, see
        benchmarks/test_table5_bandgap.py)."""
        ds = generate_dataset(400, seed=0)
        train, test = ds.split(test_fraction=0.2, seed=0)
        enc = GraphEncoder()
        base = evaluate_model("mfcgnn", train, test, encoder=enc,
                              epochs=200, seed=0)
        fused = evaluate_model(
            "+gpt", train, test, encoder=enc,
            embedder=GPTFormulaEmbedder(trained_gpt, tokenizer),
            gnn_name="mfcgnn", epochs=200, seed=0)
        assert fused.test_mae < base.test_mae + 0.03

    def test_cgcnn_worst_baseline(self):
        ds = generate_dataset(400, seed=0)
        train, test = ds.split(test_fraction=0.2, seed=0)
        enc = GraphEncoder()
        cgcnn = evaluate_model("cgcnn", train, test, encoder=enc,
                               epochs=200, seed=0)
        alignn = evaluate_model("alignn", train, test, encoder=enc,
                                epochs=200, seed=0)
        assert alignn.test_mae < cgcnn.test_mae + 0.02


class TestAnalysis:
    RNG = np.random.default_rng(0)

    def test_pairwise_distances(self):
        X = np.array([[0.0, 0], [3.0, 4], [0, 0]])
        d = pairwise_distances(X)
        assert sorted(np.round(d, 6)) == [0.0, 5.0, 5.0]

    def test_pairwise_sampled_path(self):
        X = self.RNG.normal(size=(400, 4))
        d = pairwise_distances(X, max_pairs=1000)
        assert len(d) <= 1000
        assert (d > 0).all()

    def test_cosine_range(self):
        X = self.RNG.normal(size=(30, 8))
        c = cosine_similarities(X)
        assert (c >= -1 - 1e-9).all() and (c <= 1 + 1e-9).all()

    def test_cosine_anisotropic_cone(self):
        base = self.RNG.normal(size=8)
        X = base + 0.05 * self.RNG.normal(size=(40, 8))
        assert cosine_similarities(X).mean() > 0.95

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            pairwise_distances(np.ones((1, 3)))

    def test_pca_variance_ordering(self):
        X = self.RNG.normal(size=(100, 5)) * np.array([5, 2, 1, 0.5, 0.1])
        _, ratios = pca(X, 3)
        assert ratios[0] > ratios[1] > ratios[2]
        assert ratios.sum() <= 1.0 + 1e-9

    def test_pca_too_many_components(self):
        with pytest.raises(ValueError):
            pca(np.ones((5, 3)), 4)

    def test_tsne_separates_clusters(self):
        a = self.RNG.normal(0, 0.3, size=(25, 10))
        b = self.RNG.normal(6, 0.3, size=(25, 10))
        Y = tsne(np.vstack([a, b]), n_iter=120, seed=0)
        assert Y.shape == (50, 2)
        centroid_gap = np.linalg.norm(Y[:25].mean(0) - Y[25:].mean(0))
        spread = max(Y[:25].std(), Y[25:].std())
        assert centroid_gap > spread

    def test_tsne_too_few_points(self):
        with pytest.raises(ValueError):
            tsne(np.ones((3, 4)))

    def test_kmeans_recovers_blobs(self):
        a = self.RNG.normal(0, 0.2, size=(20, 3))
        b = self.RNG.normal(5, 0.2, size=(20, 3))
        labels, centers = kmeans(np.vstack([a, b]), 2, seed=0)
        assert len(set(labels[:20])) == 1
        assert len(set(labels[20:])) == 1
        assert labels[0] != labels[-1]

    def test_kmeans_invalid_k(self):
        with pytest.raises(ValueError):
            kmeans(np.ones((3, 2)), 5)

    def test_silhouette_good_vs_bad(self):
        a = self.RNG.normal(0, 0.2, size=(20, 3))
        b = self.RNG.normal(5, 0.2, size=(20, 3))
        X = np.vstack([a, b])
        good = np.array([0] * 20 + [1] * 20)
        bad = np.tile([0, 1], 20)
        assert silhouette_score(X, good) > silhouette_score(X, bad)

    def test_silhouette_needs_two_clusters(self):
        with pytest.raises(ValueError):
            silhouette_score(np.ones((4, 2)), np.zeros(4))

    def test_fig16_gpt_vs_bert_geometry(self, tokenizer, trained_gpt):
        """GPT embeddings: small distances, cosines ~1; BERT: spread."""
        from repro.data import FormulaGenerator
        formulas = [str(f) for f in FormulaGenerator(seed=0).sample_many(60)]
        gpt = diagnose_embeddings(
            "gpt",
            GPTFormulaEmbedder(trained_gpt, tokenizer).embed_many(formulas))
        bert = diagnose_embeddings(
            "bert", MatSciBERTEmbedder().embed_many(formulas))
        assert gpt.mean_cosine > bert.mean_cosine
        assert gpt.is_anisotropic
        assert not bert.is_anisotropic

"""Tests for the Frontier hardware model: specs, roofline, memory, power."""

import numpy as np
import pytest

from repro.frontier import (FRONTIER, GCDSpec, MemoryModel, PowerModel,
                            RooflineModel)
from repro.models import GEMMShape, ModelConfig, preset


class TestHardwareSpecs:
    def test_paper_numbers(self):
        assert FRONTIER.node.num_gcds == 8
        assert FRONTIER.num_nodes == 9408
        assert FRONTIER.num_gcds == 75264
        assert FRONTIER.node.package.peak_tflops == pytest.approx(383.0)
        assert GCDSpec().hbm_gb == 64.0

    def test_bandwidth_hierarchy(self):
        node = FRONTIER.node
        assert node.package.intra_package_bw_gbs > node.intra_node_bw_gbs
        assert node.intra_node_bw_gbs == node.nic_bw_gbs == 100.0

    def test_gpu_count_validation(self):
        FRONTIER.validate_gpu_count(256)
        with pytest.raises(ValueError):
            FRONTIER.validate_gpu_count(12)  # not a multiple of 8 (Eq. 5)
        with pytest.raises(ValueError):
            FRONTIER.validate_gpu_count(0)
        with pytest.raises(ValueError):
            FRONTIER.validate_gpu_count(80000)


class TestRoofline:
    @pytest.fixture(scope="class")
    def rl(self):
        return RooflineModel()

    def test_fig4_best_architecture_anchor(self, rl):
        """Best heatmap cell: 24 layers x 2304 hidden at ~76 TFLOPS/GCD."""
        cfg = ModelConfig(arch="neox", hidden_size=2304, num_layers=24,
                          num_heads=24)
        v = rl.achieved_tflops(cfg)
        assert 72 < v < 80

    def test_fig4_flash_anchors(self, rl):
        """Flash v1/v2 best-case ~82/84 TFLOPS (paper); v2 > v1 > none."""
        cfg = ModelConfig(arch="neox", hidden_size=2304, num_layers=24,
                          num_heads=24)
        v0 = rl.achieved_tflops(cfg)
        v1 = rl.achieved_tflops(cfg, flash=1)
        v2 = rl.achieved_tflops(cfg, flash=2)
        assert v0 < v1 < v2
        assert 78 < v1 < 88
        assert 80 < v2 < 92

    def test_observation1_head_dim_multiple_of_8(self, rl):
        """Aligned head dims beat misaligned ones at equal layer/hidden."""
        good = ModelConfig(arch="neox", hidden_size=1920, num_layers=20,
                           num_heads=20)   # head_dim 96
        bad = ModelConfig(arch="neox", hidden_size=1940, num_layers=20,
                          num_heads=20)    # head_dim 97
        assert rl.achieved_tflops(good) > rl.achieved_tflops(bad)

    def test_over_43pct_of_peak_with_flash(self, rl):
        """Observation 1: >43% of the 191.5 TFLOPS GCD peak with flash."""
        cfg = ModelConfig(arch="neox", hidden_size=2304, num_layers=24,
                          num_heads=24)
        assert rl.achieved_tflops(cfg, flash=2) / 191.5 > 0.43

    def test_gemm_efficiency_bounds(self, rl):
        for g in [GEMMShape("qkv", 16384, 2304, 6912),
                  GEMMShape("score", 2048, 96, 2048, count=192),
                  GEMMShape("mlp", 64, 64, 64)]:
            eff = rl.gemm_efficiency(g)
            assert 0.0 < eff < 0.95 or eff == 0.95

    def test_larger_gemms_more_efficient(self, rl):
        small = GEMMShape("mlp", 256, 256, 256)
        large = GEMMShape("mlp", 8192, 8192, 8192)
        assert rl.gemm_efficiency(large) > rl.gemm_efficiency(small)

    def test_gemm_fraction_grows_with_model_scale(self, rl):
        """Fig 10: GEMM share of layer time rises with model size."""
        medium = ModelConfig(arch="neox", hidden_size=2304, num_layers=24,
                             num_heads=24)
        large = ModelConfig(arch="neox", hidden_size=4096, num_layers=32,
                            num_heads=32)
        f_med = rl.layer_forward_timing(medium, 2048, 8).gemm_fraction()
        f_big = rl.layer_forward_timing(large, 2048, 8).gemm_fraction()
        assert f_big > f_med > 0.5

    def test_step_time_positive_and_monotone_in_batch(self, rl):
        cfg = preset("neox-1.7b-hf-52k")
        t1 = rl.step_time(cfg, 2048, 4)
        t2 = rl.step_time(cfg, 2048, 8)
        assert 0 < t1 < t2

    def test_component_fractions_sum_to_one(self, rl):
        cfg = preset("neox-1.7b-hf-52k")
        fr = rl.layer_forward_timing(cfg, 2048, 8).component_fractions()
        assert sum(fr.values()) == pytest.approx(1.0)
        assert set(fr) >= {"qkv", "mlp", "other"}

    def test_neox_edge_over_llama(self, rl):
        """Fig 6: NeoX wins the throughput comparison in most cases."""
        elig = [(16, 2176, 16), (20, 2080, 20), (20, 2240, 20),
                (20, 2400, 20), (24, 1920, 24), (24, 2304, 24),
                (32, 1536, 32), (32, 1792, 32)]
        wins = 0
        for L, h, a in elig:
            n = rl.achieved_tflops(ModelConfig(
                arch="neox", hidden_size=h, num_layers=L, num_heads=a), flash=1)
            l = rl.achieved_tflops(ModelConfig(
                arch="llama", hidden_size=h, num_layers=L, num_heads=a), flash=1)
            wins += n > l
        assert wins >= 6  # paper: 7 of 8

    def test_jitter_is_deterministic(self, rl):
        cfg = preset("neox-1.7b-hf-52k")
        assert rl.achieved_tflops(cfg) == rl.achieved_tflops(cfg)


class TestMemoryModel:
    @pytest.fixture(scope="class")
    def mm(self):
        return MemoryModel()

    @pytest.fixture(scope="class")
    def cfg(self):
        return preset("neox-1.7b-hf-52k")

    def test_fig5_oom_without_flash_beyond_8192(self, mm, cfg):
        assert mm.breakdown(cfg, seq_len=8192, flash=0).fits
        assert not mm.breakdown(cfg, seq_len=16384, flash=0).fits

    def test_fig5_flash_reaches_32768(self, mm, cfg):
        assert mm.max_seq_len(cfg, flash=0) == 8192
        assert mm.max_seq_len(cfg, flash=1) == 32768  # 4x, as in the paper

    def test_flash_memory_linear_in_seq(self, mm, cfg):
        """With flash, doubling seq roughly doubles the seq-dependent part."""
        def seq_part(s):
            b = mm.breakdown(cfg, seq_len=s, flash=1)
            return b.total - b.model_states - b.workspace
        g1 = seq_part(16384) / seq_part(8192)
        assert 1.8 < g1 < 2.2

    def test_noflash_memory_quadratic_tail(self, mm, cfg):
        b1 = mm.breakdown(cfg, seq_len=8192, flash=0).transient
        b2 = mm.breakdown(cfg, seq_len=16384, flash=0).transient
        assert b2 / b1 > 3.0  # dominated by the s^2 score term

    def test_12x_rule(self, mm, cfg):
        b = mm.breakdown(cfg, seq_len=2048, flash=1)
        assert b.model_states == pytest.approx(12.0 * cfg.num_parameters())

    def test_zero1_shards_optimizer(self, mm, cfg):
        full = mm.breakdown(cfg, dp=8, zero_stage=0).model_states
        sharded = mm.breakdown(cfg, dp=8, zero_stage=1).model_states
        params = cfg.num_parameters()
        assert sharded == pytest.approx(full - 8.0 * params * 7 / 8)

    def test_tp_divides_states(self, mm, cfg):
        full = mm.breakdown(cfg).model_states
        assert mm.breakdown(cfg, tp=2).model_states == pytest.approx(full / 2)

    def test_6_7b_needs_model_parallelism(self, mm):
        """The paper's motivation for Fig 7: 6.7B exceeds one GCD."""
        cfg = preset("neox-6.7b-hf-52k")
        assert not mm.breakdown(cfg, seq_len=2048, micro_batch=8, flash=1).fits
        assert mm.breakdown(cfg, seq_len=2048, micro_batch=8, flash=1,
                            dp=8, zero_stage=1).fits

    def test_invalid_args(self, mm, cfg):
        with pytest.raises(ValueError):
            mm.breakdown(cfg, tp=0)
        with pytest.raises(ValueError):
            mm.breakdown(cfg, zero_stage=4)

    def test_breakdown_as_gb_consistent(self, mm, cfg):
        b = mm.breakdown(cfg)
        gb = b.as_gb()
        assert gb["total"] == pytest.approx(sum(
            v for k, v in gb.items() if k != "total"))


class TestPowerModel:
    @pytest.fixture(scope="class")
    def pm(self):
        return PowerModel()

    def test_phase_ordering(self, pm):
        assert pm.phase_watts("compute") > pm.phase_watts("memory") > \
            pm.phase_watts("comm") > pm.phase_watts("idle")

    def test_unknown_phase(self, pm):
        with pytest.raises(ValueError):
            pm.phase_watts("sleeping")

    def test_mean_power_mix(self, pm):
        w = pm.mean_power({"compute": 0.6, "comm": 0.4})
        assert pm.phase_watts("comm") < w < pm.phase_watts("compute")

    def test_mean_power_requires_normalized(self, pm):
        with pytest.raises(ValueError):
            pm.mean_power({"compute": 0.5})

    def test_fig12_power_anticorrelates_with_comm(self, pm):
        """6.7B (more comm) draws less mean power than 1.7B: 434 vs 476 W."""
        p17 = pm.mean_power({"compute": 0.80, "memory": 0.05, "comm": 0.13,
                             "io": 0.02})
        p67 = pm.mean_power({"compute": 0.60, "memory": 0.05, "comm": 0.30,
                             "io": 0.05})
        assert p67 < p17
        assert 410 < p67 < 460   # paper: 434 W
        assert 450 < p17 < 500   # paper: 476 W

    def test_trace_oscillates_between_levels(self, pm):
        times, watts = pm.trace([("compute", 0.5), ("comm", 0.5)] * 3)
        assert len(times) == len(watts)
        assert watts.max() > 480
        assert watts.min() < 420

    def test_energy_summary_table_iv_shape(self, pm):
        """Energy for 6.7B >> 1.7B; TFLOPS/W lower for 6.7B."""
        s17 = pm.run_summary({"compute": 0.80, "memory": 0.05, "comm": 0.13,
                              "io": 0.02}, duration_s=4.1 * 3600, num_gcds=256)
        s67 = pm.run_summary({"compute": 0.60, "memory": 0.05, "comm": 0.30,
                              "io": 0.05}, duration_s=16.5 * 3600, num_gcds=256)
        assert s67.energy_mwh > 3 * s17.energy_mwh
        assert 0.15 < s17.energy_mwh < 0.35   # paper: 0.23 MWh
        assert 0.7 < s67.energy_mwh < 1.2     # paper: 0.91 MWh
        assert s17.tflops_per_watt(80.5) > s67.tflops_per_watt(59.0)

    def test_run_summary_rejects_odd_gcds(self, pm):
        with pytest.raises(ValueError):
            pm.run_summary({"compute": 1.0}, 10.0, num_gcds=3)

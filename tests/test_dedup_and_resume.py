"""Tests for corpus deduplication and optimizer checkpoint/resume."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (AbstractGenerator, DedupReport, MinHasher,
                        deduplicate, find_duplicates, jaccard)
from repro.models import Parameter
from repro.training import Adam, LAMB, SGD


@pytest.fixture(scope="module")
def docs():
    return [d.text for d in AbstractGenerator(seed=0).sample(60)]


class TestJaccard:
    def test_identical(self):
        assert jaccard("the band gap of GaAs", "the band gap of GaAs") == 1.0

    def test_disjoint(self):
        assert jaccard("alpha beta gamma delta", "one two three four") == 0.0

    def test_symmetric(self, docs):
        assert jaccard(docs[0], docs[1]) == jaccard(docs[1], docs[0])

    def test_empty_strings(self):
        assert jaccard("", "") == 1.0
        assert jaccard("", "something here") == 0.0

    @settings(max_examples=20, deadline=None)
    @given(st.text(alphabet="abcd ", min_size=0, max_size=60))
    def test_property_self_similarity(self, text):
        assert jaccard(text, text) == 1.0


class TestMinHash:
    def test_signature_shape_and_determinism(self, docs):
        mh = MinHasher(num_hashes=64)
        s1 = mh.signature(docs[0])
        s2 = mh.signature(docs[0])
        assert s1.shape == (64,)
        np.testing.assert_array_equal(s1, s2)

    def test_estimate_tracks_exact_jaccard(self, docs):
        mh = MinHasher(num_hashes=256)
        a = docs[0]
        b = docs[0] + " one extra trailing sentence for the test."
        est = mh.estimate_similarity(mh.signature(a), mh.signature(b))
        exact = jaccard(a, b)
        assert abs(est - exact) < 0.15

    def test_unrelated_docs_low_similarity(self, docs):
        mh = MinHasher(num_hashes=128)
        est = mh.estimate_similarity(mh.signature(docs[0]),
                                     mh.signature(docs[1]))
        assert est < 0.3

    def test_invalid_num_hashes(self):
        with pytest.raises(ValueError):
            MinHasher(num_hashes=1)


class TestDeduplicate:
    def test_finds_injected_duplicates(self, docs):
        corrupted = docs + [docs[3], docs[7] + " Extra tail.", docs[10]]
        kept, report = deduplicate(corrupted, threshold=0.6)
        assert report.total == 63
        assert report.kept == 60
        assert kept == docs
        dup_sources = {i for i, _ in report.duplicate_pairs}
        assert dup_sources == {3, 7, 10}

    def test_clean_corpus_untouched(self, docs):
        kept, report = deduplicate(docs, threshold=0.6)
        assert kept == docs
        assert report.removed == 0
        assert report.duplicate_rate == 0.0

    def test_exact_duplicates_always_found(self, docs):
        kept, report = deduplicate([docs[0]] * 4, threshold=0.99)
        assert report.kept == 1

    def test_threshold_validated(self, docs):
        with pytest.raises(ValueError):
            find_duplicates(docs, threshold=0.0)

    def test_bands_must_divide(self, docs):
        with pytest.raises(ValueError):
            find_duplicates(docs, hasher=MinHasher(num_hashes=64), bands=7)

    def test_no_false_positives_at_high_threshold(self, docs):
        """Exact verification removes LSH false positives."""
        pairs = find_duplicates(docs, threshold=0.95)
        assert pairs == []


class TestOptimizerResume:
    @pytest.mark.parametrize("opt_cls,kwargs", [
        (SGD, {"momentum": 0.9}),
        (Adam, {"weight_decay": 0.1}),
        (LAMB, {"weight_decay": 0.1}),
    ])
    def test_resume_continues_exact_trajectory(self, opt_cls, kwargs):
        def grads(seed):
            return np.random.default_rng(seed).normal(size=(12, 6))

        # Uninterrupted run.
        p = Parameter(np.ones(6))
        opt = opt_cls([p], lr=1e-2, **kwargs)
        for g in grads(0):
            p.grad = g
            opt.step()
        reference = p.data.copy()

        # Interrupted at step 6, checkpointed, resumed.
        p2 = Parameter(np.ones(6))
        opt2 = opt_cls([p2], lr=1e-2, **kwargs)
        all_grads = grads(0)
        for g in all_grads[:6]:
            p2.grad = g
            opt2.step()
        weights, state = p2.data.copy(), opt2.state_dict()

        p3 = Parameter(weights.copy())
        opt3 = opt_cls([p3], lr=1e-2, **kwargs)
        opt3.load_state_dict(state)
        for g in all_grads[6:]:
            p3.grad = g
            opt3.step()
        np.testing.assert_allclose(p3.data, reference, atol=1e-14)

    def test_state_dict_is_a_copy(self):
        p = Parameter(np.ones(3))
        opt = Adam([p], lr=1e-2)
        p.grad = np.ones(3)
        opt.step()
        state = opt.state_dict()
        state["m"][0][:] = 999.0
        assert opt._m[0].max() < 999.0

    def test_mismatched_state_rejected(self):
        a = Adam([Parameter(np.ones(3))], lr=1e-2)
        b = Adam([Parameter(np.ones(3)), Parameter(np.ones(2))], lr=1e-2)
        with pytest.raises(ValueError):
            b.load_state_dict(a.state_dict())

    def test_sgd_momentum_state_required(self):
        opt = SGD([Parameter(np.ones(2))], lr=1e-2, momentum=0.9)
        with pytest.raises(KeyError):
            opt.load_state_dict({"step_count": 1, "lr": 1e-2})

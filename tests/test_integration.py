"""Cross-layer integration tests.

The repository has two views of each parallel algorithm — an analytical
cost model and a functional executor — plus analytic accounting next to
live NumPy models.  These tests pin the views to each other, so a change
to one layer that breaks its counterpart is caught.
"""

import numpy as np
import pytest

from repro.frontier import MemoryModel, RooflineModel
from repro.models import (GPTModel, ModelConfig, layer_accounting,
                          model_flops_per_token, preset)
from repro.parallel import (CollectiveModel, ParallelConfig,
                            Zero1DataParallel, build_schedule)
from repro.parallel.functional import DataParallelTrainer

TINY = ModelConfig(arch="llama", hidden_size=32, num_layers=4, num_heads=4,
                   vocab_size=128, max_seq_len=32)


class TestAnalyticVsLive:
    @pytest.mark.parametrize("name", ["tiny-neox", "tiny-llama",
                                      "small-neox", "small-llama"])
    def test_param_accounting_matches_model(self, name):
        cfg = preset(name)
        assert GPTModel(cfg, seed=0).num_parameters() == \
            cfg.num_parameters()

    def test_layer_accounting_sums_to_model_params(self):
        """Per-layer accounting x layers + embeddings = model total."""
        cfg = preset("tiny-llama")
        acc = layer_accounting(cfg, seq_len=8, batch_size=1)
        final_norm = cfg.hidden_size  # RMSNorm weight
        expected = (acc.total_params * cfg.num_layers + final_norm +
                    cfg.vocab_size * cfg.hidden_size)
        assert expected == cfg.num_parameters()

    def test_flops_per_token_vs_gemm_accounting(self):
        """6N-based and GEMM-shape-based FLOP counts agree within 25%."""
        cfg = preset("neox-1.7b-hf-52k")
        acc = layer_accounting(cfg, seq_len=2048, batch_size=1)
        # GEMM accounting: layers x per-layer training FLOPs + head, per token.
        head = 2 * 2048 * cfg.hidden_size * cfg.vocab_size
        gemm_total = (acc.total_training_flops * cfg.num_layers +
                      3 * head) / 2048
        six_n = model_flops_per_token(cfg, 2048)
        assert abs(gemm_total - six_n) / six_n < 0.25


class TestAnalyticCommVsFunctional:
    def test_dp_logged_volume_matches_executed_traffic(self):
        """The RCCL-log model's DP volume equals what functional DP moves.

        Analytical: bucketed allreduce of fp32 main grads = 4 B/param.
        Functional: one allreduce per parameter tensor = all params once.
        """
        cfg = preset("neox-1.7b-hf-52k")
        sched = build_schedule(cfg, ParallelConfig(dp=64),
                               CollectiveModel(), 2048, 16384)
        assert sched.log.total_bytes == pytest.approx(
            4.0 * cfg.num_parameters(), rel=1e-6)

        dp = DataParallelTrainer(lambda: GPTModel(TINY, seed=0),
                                 world_size=2, lr=1e-3)
        rng = np.random.default_rng(0)
        ids = rng.integers(0, 128, size=(4, 9))
        dp.step(ids[:, :-1], ids[:, 1:])
        # One allreduce per parameter tensor.
        assert dp.comm.stats["allreduce"] == \
            len(dp.replicas[0].parameters())

    def test_zero1_shard_sizes_match_memory_model(self):
        """Functional ZeRO-1 shard totals agree with the stage-1 memory
        model's optimizer accounting."""
        world = 2
        zero = Zero1DataParallel(lambda: GPTModel(TINY, seed=0),
                                 world_size=world, lr=1e-3)
        shard_sizes = zero.optimizer_state_bytes_per_rank()
        params = TINY.num_parameters()
        assert sum(shard_sizes) == 8 * params

        mm = MemoryModel()
        full = mm.breakdown(TINY, dp=world, zero_stage=0).model_states
        sharded = mm.breakdown(TINY, dp=world, zero_stage=1).model_states
        # The memory model removes exactly the non-local optimizer share.
        assert full - sharded == pytest.approx(
            8 * params * (1 - 1 / world))
        # Round-robin sharding is roughly even.
        assert max(shard_sizes) < 0.8 * sum(shard_sizes)


class TestRooflineVsAccounting:
    def test_step_time_bounded_by_ideal(self):
        """Simulated step time can never beat the zero-overhead bound."""
        rl = RooflineModel()
        cfg = preset("neox-1.7b-hf-52k")
        acc = layer_accounting(cfg, seq_len=2048, batch_size=8)
        ideal = (acc.total_training_flops * cfg.num_layers /
                 rl.gcd.peak_flops)
        assert rl.step_time(cfg, 2048, 8) > ideal

    def test_achieved_tflops_consistent_with_step_time(self):
        rl = RooflineModel()
        cfg = preset("neox-1.7b-hf-52k")
        t = rl.step_time(cfg, 2048, 8)
        flops = model_flops_per_token(cfg, 2048) * 8 * 2048
        assert rl.achieved_tflops(cfg, 2048, 8) == pytest.approx(
            flops / t / 1e12, rel=1e-9)


class TestMemoryVsConfig:
    def test_12x_rule_tracks_param_count(self):
        mm = MemoryModel()
        for name in ("neox-1.7b-hf-52k", "llama-6.7b-hf-52k"):
            cfg = preset(name)
            b = mm.breakdown(cfg)
            assert b.model_states == pytest.approx(
                12.0 * cfg.num_parameters())

    def test_gqa_reduces_modelled_states_too(self):
        mm = MemoryModel()
        mha = ModelConfig(arch="llama", hidden_size=4096, num_layers=32,
                          num_heads=32, vocab_size=52000)
        gqa = ModelConfig(arch="llama", hidden_size=4096, num_layers=32,
                          num_heads=32, num_kv_heads=8, vocab_size=52000)
        assert mm.breakdown(gqa).model_states < \
            mm.breakdown(mha).model_states

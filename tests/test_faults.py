"""Tests for the fault-injection subsystem (repro.faults): seeded fault
schedules, checkpoint-restart goodput (Young-Daly), serving failover,
crash-safe checkpoints, and the zero-fault bit-exactness contract."""

import math

import pytest

from repro.faults import FaultConfig, FaultModel, RetryPolicy
from repro.models import (CheckpointCorruptError, GPTModel, load_checkpoint,
                          preset, save_checkpoint)
from repro.models.checkpoint import read_verified, write_atomic
from repro.serving import (ClusterConfig, ClusterSimulator, FailoverConfig,
                           ReplicaLayout, ServingConfig, WorkloadConfig,
                           synthesize_workload)
from repro.training import (CheckpointCostModel, CheckpointRestartSimulator,
                            checkpoint_state_bytes, expected_goodput,
                            young_daly_interval)


# ----------------------------------------------------------------------
# Fault model determinism and validation
# ----------------------------------------------------------------------

class TestFaultModel:
    CFG = FaultConfig(mtbf_hours=0.01, straggler_mtbe_hours=0.02,
                      link_mtbe_hours=0.05, seed=42)

    def test_same_seed_same_schedule(self):
        a = FaultModel(self.CFG, 8).schedule(600.0)
        b = FaultModel(self.CFG, 8).schedule(600.0)
        assert a == b
        assert len(a) > 0

    def test_schedule_is_interleaving_independent(self):
        """peek/pop interleaving must not perturb the draw order."""
        a = FaultModel(self.CFG, 8)
        b = FaultModel(self.CFG, 8)
        serial = a.schedule(600.0)
        stepped = []
        t = 0.0
        while t < 600.0:
            t += 37.0
            b.peek_time()            # extra peeks must be harmless
            stepped.extend(b.events_until(min(t, 600.0)))
        assert serial == stepped

    def test_different_seed_different_schedule(self):
        other = FaultConfig(mtbf_hours=0.01, seed=43)
        a = FaultModel(self.CFG, 8).schedule(600.0)
        b = FaultModel(other, 8).schedule(600.0)
        assert [e.time_s for e in a if e.kind == "failure"] != \
            [e.time_s for e in b if e.kind == "failure"]

    def test_events_sorted_and_typed(self):
        events = FaultModel(self.CFG, 8).schedule(600.0)
        times = [e.time_s for e in events]
        assert times == sorted(times)
        assert {e.kind for e in events} <= {"failure", "straggler",
                                            "link-degrade"}
        assert all(0 <= e.component < 8 for e in events
                   if e.kind != "link-degrade")

    def test_failure_rate_scales_with_components(self):
        cfg = FaultConfig(mtbf_hours=0.01, seed=1)
        few = [e for e in FaultModel(cfg, 2).schedule(600.0)]
        many = [e for e in FaultModel(cfg, 16).schedule(600.0)]
        assert len(many) > len(few)
        assert FaultModel(cfg, 16).system_mtbf_s == \
            pytest.approx(FaultModel(cfg, 2).system_mtbf_s / 8)

    def test_fault_free_is_empty(self):
        model = FaultModel(FaultConfig(), 8)
        assert model.fault_free
        assert model.peek_time() == math.inf
        assert model.schedule(1e9) == []

    def test_validation_errors_name_the_field(self):
        with pytest.raises(ValueError, match="mtbf_hours"):
            FaultConfig(mtbf_hours=0.0)
        with pytest.raises(ValueError, match="straggler_slowdown"):
            FaultConfig(straggler_slowdown=0.5)
        with pytest.raises(ValueError, match="link_degrade_factor"):
            FaultConfig(link_degrade_factor=0.0)
        with pytest.raises(ValueError, match="num_components"):
            FaultModel(FaultConfig(), 0)


class TestRetryPolicy:
    def test_jitter_is_deterministic_per_request_attempt(self):
        policy = RetryPolicy(seed=5)
        assert policy.delay(7, 2) == RetryPolicy(seed=5).delay(7, 2)
        assert policy.delay(7, 2) != policy.delay(8, 2)
        assert policy.delay(7, 2) != policy.delay(7, 3)

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(base_delay_s=0.1, max_delay_s=0.4, jitter=0.0,
                             seed=0)
        assert policy.delay(0, 1) == pytest.approx(0.1)
        assert policy.delay(0, 2) == pytest.approx(0.2)
        assert policy.delay(0, 3) == pytest.approx(0.4)
        assert policy.delay(0, 5) == pytest.approx(0.4)  # capped

    def test_jitter_bounded(self):
        policy = RetryPolicy(base_delay_s=0.1, max_delay_s=0.1, jitter=0.5,
                             seed=9)
        for rid in range(20):
            delay = policy.delay(rid, 1)
            assert 0.1 <= delay <= 0.15

    def test_validation(self):
        with pytest.raises(ValueError, match="max_retries"):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError, match="max_delay_s"):
            RetryPolicy(base_delay_s=1.0, max_delay_s=0.5)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError, match="attempt"):
            RetryPolicy().delay(0, 0)


# ----------------------------------------------------------------------
# Young-Daly analysis and checkpoint-restart replay
# ----------------------------------------------------------------------

def make_sim(mtbf_hours, seed=7, step=1.0, steps=2000, gcds=128):
    cost = CheckpointCostModel(
        state_bytes=checkpoint_state_bytes(10**9), num_nodes=4)
    return CheckpointRestartSimulator(
        step, steps, cost, FaultConfig(mtbf_hours=mtbf_hours, seed=seed),
        num_gcds=gcds)


class TestYoungDaly:
    def test_interval_formula(self):
        assert young_daly_interval(10.0, 2000.0) == \
            pytest.approx(math.sqrt(2 * 10.0 * 2000.0))
        assert young_daly_interval(10.0, math.inf) == math.inf
        with pytest.raises(ValueError, match="write_s"):
            young_daly_interval(0.0, 100.0)

    def test_expected_goodput_peaks_at_the_optimum(self):
        write, mtbf, restart = 10.0, 3600.0, 70.0
        tau = young_daly_interval(write, mtbf)
        at_tau = expected_goodput(tau, mtbf, write, restart)
        assert at_tau > expected_goodput(tau / 4, mtbf, write, restart)
        assert at_tau > expected_goodput(tau * 4, mtbf, write, restart)

    def test_expected_goodput_edge_cases(self):
        assert expected_goodput(math.inf, math.inf, 10.0, 70.0) == 1.0
        assert expected_goodput(100.0, math.inf, 10.0, 70.0) == \
            pytest.approx(100.0 / 110.0)
        with pytest.raises(ValueError, match="closed form"):
            expected_goodput(math.inf, 3600.0, 10.0, 70.0)


class TestCheckpointRestartSimulator:
    def test_zero_fault_replay_is_exact(self):
        sim = make_sim(math.inf)
        rep = sim.replay(math.inf)
        assert rep.wall_time_s == 2000 * 1.0
        assert rep.goodput == 1.0
        assert rep.failures == 0 and rep.checkpoints == 0
        assert rep.lost_work_s == 0.0

    def test_same_seed_identical_report(self):
        assert make_sim(4.0).replay(60.0) == make_sim(4.0).replay(60.0)

    def test_goodput_degrades_monotonically_with_mtbf(self):
        goodputs = [make_sim(m).replay(60.0).goodput
                    for m in (math.inf, 16.0, 8.0, 4.0, 2.0, 1.0)]
        assert all(a > b for a, b in zip(goodputs, goodputs[1:]))

    def test_young_daly_interval_beats_4x_shorter_and_longer(self):
        sim = make_sim(4.0)
        tau = sim.young_daly_interval()
        short, best, long_ = sim.interval_sweep(
            [tau * 0.25, tau, tau * 4.0])
        assert best.goodput > short.goodput
        assert best.goodput > long_.goodput

    def test_accounting_identity(self):
        rep = make_sim(4.0).replay(60.0)
        total = (rep.useful_s + rep.lost_work_s + rep.restart_overhead_s
                 + rep.checkpoint_overhead_s + rep.straggler_stretch_s)
        assert rep.wall_time_s == pytest.approx(total)
        assert rep.goodput == pytest.approx(
            rep.useful_s / rep.wall_time_s)

    def test_stragglers_stretch_but_do_not_rewind(self):
        cfg = FaultConfig(straggler_mtbe_hours=0.05,
                          straggler_slowdown=3.0, straggler_window_s=50.0,
                          seed=3)
        cost = CheckpointCostModel(state_bytes=10**9)
        sim = CheckpointRestartSimulator(1.0, 500, cost, cfg, num_gcds=8)
        rep = sim.replay(math.inf)
        assert rep.failures == 0
        assert rep.straggler_stretch_s > 0
        assert rep.wall_time_s == pytest.approx(
            rep.useful_s + rep.straggler_stretch_s)

    def test_link_degrade_taxes_only_the_comm_fraction(self):
        cfg = FaultConfig(link_mtbe_hours=0.05, link_degrade_factor=0.5,
                          link_window_s=50.0, seed=3)
        cost = CheckpointCostModel(state_bytes=10**9)
        compute_only = CheckpointRestartSimulator(
            1.0, 500, cost, cfg, num_gcds=8, comm_fraction=0.0)
        comm_heavy = CheckpointRestartSimulator(
            1.0, 500, cost, cfg, num_gcds=8, comm_fraction=0.5)
        assert compute_only.replay(math.inf).wall_time_s == 500.0
        assert comm_heavy.replay(math.inf).wall_time_s > 500.0

    def test_report_to_dict_roundtrips(self):
        rep = make_sim(4.0).replay(60.0)
        data = rep.to_dict()
        assert data["goodput"] == rep.goodput
        assert data["failures"] == rep.failures

    def test_validation(self):
        with pytest.raises(ValueError, match="step_time_s"):
            make_sim(4.0).__class__(0.0, 10,
                                    CheckpointCostModel(state_bytes=1e9),
                                    FaultConfig())
        with pytest.raises(ValueError, match="interval_s"):
            make_sim(4.0).replay(0.0)
        with pytest.raises(ValueError, match="state_bytes"):
            CheckpointCostModel(state_bytes=0)
        with pytest.raises(ValueError, match="unknown optimizer"):
            checkpoint_state_bytes(1000, "adagrad")


# ----------------------------------------------------------------------
# Serving failover
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def model_config():
    return preset("llama-1.7b-hf-32k")


def failover_cfg(slo=1.0, recovery=0.5, max_retries=3):
    return FailoverConfig(detection_s=0.01, recovery_s=recovery,
                          retry=RetryPolicy(max_retries=max_retries,
                                            seed=5),
                          slo_ttft_s=slo)


def run_faulted(model_config, mtbf_hours, *, seed=3, fault_seed=11,
                n=64, rate=30.0, policy="least-outstanding", nodes=1,
                failover=None):
    """The validated failover regime: a high-utilization single node
    whose ~2 s virtual horizon makes second-scale MTBFs meaningful."""
    wl = WorkloadConfig(num_requests=n, arrival_rate=rate,
                        prompt_len_range=(128, 512),
                        output_len_range=(128, 256), seed=seed)
    faults = None if mtbf_hours is None else \
        FaultConfig(mtbf_hours=mtbf_hours, seed=fault_seed)
    cfg = ClusterConfig(
        num_nodes=nodes, layout=ReplicaLayout.from_label("8xTP1"),
        policy=policy, serving=ServingConfig(max_batch_tokens=8192),
        faults=faults, failover=failover or failover_cfg())
    sim = ClusterSimulator(model_config, cfg)
    return sim.run(synthesize_workload(wl, model_config))


class TestServingFailover:
    def test_mtbf_inf_is_bit_exact_with_faults_none(self, model_config):
        base = run_faulted(model_config, None)
        inf = run_faulted(model_config, math.inf)
        assert [r.__dict__ for r in base.records] == \
            [r.__dict__ for r in inf.records]
        assert base.metrics == inf.metrics
        assert inf.availability == 1.0
        assert inf.retries_total == 0
        assert inf.fault_events == []

    def test_same_seeds_identical_faulted_result(self, model_config):
        a = run_faulted(model_config, 0.0002)
        b = run_faulted(model_config, 0.0002)
        assert [r.__dict__ for r in a.records] == \
            [r.__dict__ for r in b.records]
        assert a.failed_records == b.failed_records
        assert a.fault_events == b.fault_events
        assert a.retries_total == b.retries_total

    def test_no_request_is_silently_dropped(self, model_config):
        for mtbf in (0.0005, 0.0002):
            res = run_faulted(model_config, mtbf)
            ids = {r.request_id for r in res.records} | \
                {f.request_id for f in res.failed_records}
            assert ids == set(range(res.submitted))
            assert len(res.records) + len(res.failed_records) == \
                res.submitted

    def test_availability_degrades_monotonically(self, model_config):
        avail = [run_faulted(model_config, m).availability
                 for m in (math.inf, 0.0005, 0.0002)]
        assert all(a >= b for a, b in zip(avail, avail[1:]))
        assert avail[-1] < 1.0

    def test_failover_produces_retries_and_fault_events(self, model_config):
        res = run_faulted(model_config, 0.0002)
        assert res.retries_total > 0
        assert any(e["kind"] == "failure" for e in res.fault_events)
        assert any(r.retries > 0 for r in res.records)

    def test_retry_exhaustion_fails_requests(self, model_config):
        res = run_faulted(model_config, 0.0002,
                          failover=failover_cfg(max_retries=0))
        assert res.failed_records
        assert all(f.retries == 0 for f in res.failed_records)

    def test_zero_survivors_raises_descriptive_error(self, model_config):
        # One single replica, fail-stop (no recovery): once it dies the
        # pending requests can never be placed.
        wl = WorkloadConfig(num_requests=48, arrival_rate=20.0,
                            prompt_len_range=(128, 512),
                            output_len_range=(128, 256), seed=3)
        cfg = ClusterConfig(
            num_nodes=1, layout=ReplicaLayout.from_label("1xTP8"),
            serving=ServingConfig(max_batch_tokens=8192),
            faults=FaultConfig(mtbf_hours=0.0002, seed=11),
            failover=FailoverConfig(
                detection_s=0.01, recovery_s=math.inf,
                retry=RetryPolicy(max_retries=3, seed=5)))
        sim = ClusterSimulator(model_config, cfg)
        with pytest.raises(ValueError, match="surviving replicas"):
            sim.run(synthesize_workload(wl, model_config))

    def test_result_to_dict_carries_fault_fields(self, model_config):
        data = run_faulted(model_config, 0.0002).to_dict()
        assert "availability" in data and "fault_events" in data
        assert data["submitted"] == 64

    def test_failover_config_validation(self):
        with pytest.raises(ValueError, match="detection_s"):
            FailoverConfig(detection_s=-1.0)
        with pytest.raises(ValueError, match="recovery_s"):
            FailoverConfig(recovery_s=0.0)
        with pytest.raises(ValueError, match="detection_s"):
            FailoverConfig(detection_s=5.0, recovery_s=1.0)
        with pytest.raises(ValueError, match="slo_ttft_s"):
            FailoverConfig(slo_ttft_s=0.0)
        assert FailoverConfig(recovery_s=math.inf).fail_stop


# ----------------------------------------------------------------------
# Crash-safe checkpoint files
# ----------------------------------------------------------------------

class TestCrashSafeCheckpoint:
    def test_atomic_write_and_verified_read(self, tmp_path):
        path = tmp_path / "artifact.bin"
        write_atomic(path, b"hello world")
        assert read_verified(path) == b"hello world"
        assert not list(tmp_path.glob("*.tmp-*"))

    def test_flipped_byte_is_detected(self, tmp_path):
        path = tmp_path / "artifact.bin"
        write_atomic(path, b"hello world")
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(CheckpointCorruptError, match="checksum"):
            read_verified(path)

    def test_truncation_is_detected(self, tmp_path):
        path = tmp_path / "artifact.bin"
        write_atomic(path, b"hello world" * 100)
        path.write_bytes(path.read_bytes()[:-10])
        with pytest.raises(CheckpointCorruptError, match="truncated"):
            read_verified(path)

    def test_headerless_legacy_file_returns_none(self, tmp_path):
        path = tmp_path / "legacy.bin"
        path.write_bytes(b"old-format payload")
        assert read_verified(path) is None

    def test_model_roundtrip_and_corruption(self, tmp_path):
        model = GPTModel(preset("tiny-llama"), seed=0)
        path = save_checkpoint(model, tmp_path / "model.npz")
        clone = load_checkpoint(path)
        for (name, p), (_, q) in zip(model.named_parameters(),
                                     clone.named_parameters()):
            assert (p.data == q.data).all(), name
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(CheckpointCorruptError):
            load_checkpoint(path)

    def test_garbage_pickle_raises_corrupt_error(self, tmp_path):
        from repro.models.checkpoint import load_tokenizer
        path = tmp_path / "tok.pkl"
        write_atomic(path, b"not a pickle at all")
        with pytest.raises(CheckpointCorruptError, match="unpickle"):
            load_tokenizer(path)

    def test_overwrite_keeps_old_or_new_never_mixed(self, tmp_path):
        path = tmp_path / "artifact.bin"
        write_atomic(path, b"version-1")
        write_atomic(path, b"version-2")
        assert read_verified(path) == b"version-2"

"""Tests for the profiling analogues (rocprof, OmniTrace, rocm-smi, Fig 10)."""

import numpy as np
import pytest

from repro.frontier import MemoryModel, PowerModel
from repro.models import preset
from repro.parallel import ParallelConfig, TrainingSimulator
from repro.profiling import (KernelAggregation, KernelRecord, StepTrace,
                             aggregate_step, build_step_trace,
                             classify_kernel, layer_breakdown, sample_run)

SIM = TrainingSimulator()
M17 = preset("neox-1.7b-hf-52k").with_flash(2)
M67 = preset("neox-6.7b-hf-52k").with_flash(2)


@pytest.fixture(scope="module")
def zero_profile():
    return SIM.step(M67, ParallelConfig(dp=256, zero_stage=1))


@pytest.fixture(scope="module")
def dp_profile():
    return SIM.step(M17, ParallelConfig(dp=256))


class TestRocprof:
    def test_classify_kernel(self):
        assert classify_kernel("Cijk_Alik_Bljk_gemm") == "compute"
        assert classify_kernel("RCCL_AllReduce_Ring") == "comm"
        assert classify_kernel("CopyDeviceToHost") == "io"
        assert classify_kernel("totally_unknown_kernel") == "compute"

    def test_aggregation_from_records(self):
        agg = KernelAggregation.from_records([
            KernelRecord("gemm_nn", 1.0),
            KernelRecord("ncclKernel_AllGather", 0.5),
            KernelRecord("memcpyD2D", 0.1),
        ])
        fr = agg.fractions()
        assert fr["compute"] == pytest.approx(1.0 / 1.6)
        assert sum(fr.values()) == pytest.approx(1.0)

    def test_empty_aggregation(self):
        assert KernelAggregation().fractions() == {"compute": 0.0, "comm": 0.0,
                                                   "io": 0.0}

    def test_fig8_zero_comm_share(self, zero_profile):
        fr = aggregate_step(zero_profile).fractions()
        assert 0.25 < fr["comm"] < 0.50   # paper: ~40% for ZeRO at 256
        assert 0.02 < fr["io"] < 0.08     # paper: ~5%

    def test_fig8_dp_compute_dominates(self, dp_profile):
        fr = aggregate_step(dp_profile).fractions()
        assert fr["compute"] > 0.75


class TestTracer:
    @pytest.fixture(scope="class")
    def trace(self, ):
        profile = SIM.step(M67, ParallelConfig(dp=256, zero_stage=1))
        return build_step_trace(M67, profile, flash=2)

    def test_events_nonoverlapping_and_ordered(self, trace):
        events = sorted(trace.events, key=lambda e: e.start_s)
        for a, b in zip(events, events[1:]):
            assert b.start_s >= a.end_s - 1e-12

    def test_forward_has_32_layers(self, trace):
        names = {e.name.split("/")[0] for e in trace.events_in("forward")}
        assert len({n for n in names if n.startswith("layer")}) == 32

    def test_flash_kernel_present_per_layer(self, trace):
        layer0 = [e.name for e in trace.events_in("forward")
                  if e.name.startswith("layer0/")]
        assert "layer0/flash_attention" in layer0

    def test_gemms_dominate_layer(self, trace):
        """Fig 10 accounting: the largest span is a GEMM (QKV or MLP)."""
        dominant = trace.dominant_forward_kernel()
        assert dominant.split("/")[-1].startswith(("mlp", "qkv"))

    def test_backward_roughly_2x_forward(self, trace):
        fwd = sum(e.duration_s for e in trace.events_in("forward"))
        bwd = sum(e.duration_s for e in trace.events_in("backward"))
        assert bwd == pytest.approx(2 * sum(
            e.duration_s for e in trace.events_in("forward")
            if e.phase == "compute"), rel=0.2)
        assert bwd > fwd * 1.5

    def test_allreduce_tail_present(self, trace):
        comm = trace.events_in("comm")
        assert comm and comm[0].name == "rccl_allreduce"
        # The allreduce tail is a significant feature (paper Fig 9).
        assert comm[0].duration_s > 0.05 * trace.duration_s

    def test_power_trace_spans_step(self, trace):
        times, watts = trace.power_trace(dt=5e-3)
        assert times[-1] == pytest.approx(trace.duration_s, rel=0.01)
        assert watts.min() > 200 and watts.max() < 600

    def test_no_forward_events_raises(self):
        with pytest.raises(ValueError):
            StepTrace().dominant_forward_kernel()

    def test_mlp_split_matches_arch(self):
        profile = SIM.step(preset("llama-6.7b-hf-52k").with_flash(2),
                           ParallelConfig(dp=256, zero_stage=1))
        tr = build_step_trace(preset("llama-6.7b-hf-52k"), profile, flash=2)
        layer0 = {e.name for e in tr.events if e.name.startswith("layer0/mlp")}
        assert len(layer0) == 3  # LLaMA: gate/up/down


class TestSmi:
    @pytest.fixture(scope="class")
    def traces(self):
        mm = MemoryModel()
        zero = SIM.step(M67, ParallelConfig(dp=256, zero_stage=1))
        dp = SIM.step(M17, ParallelConfig(dp=256))
        mem67 = mm.breakdown(M67, micro_batch=8, dp=256, zero_stage=1).total / 1e9
        mem17 = mm.breakdown(M17, micro_batch=8, dp=256).total / 1e9
        return (sample_run(zero, memory_gb=mem67, num_steps=3),
                sample_run(dp, memory_gb=mem17, num_steps=3))

    def test_fig12_power_means(self, traces):
        t67, t17 = traces
        assert 410 < t67.mean_power < 470   # paper: 434 W
        assert 450 < t17.mean_power < 510   # paper: 476 W
        assert t67.mean_power < t17.mean_power

    def test_fig12_67b_oscillates_more(self, traces):
        t67, t17 = traces
        assert t67.power_oscillation > t17.power_oscillation

    def test_fig12_utilization_near_100(self, traces):
        for tr in traces:
            assert tr.mean_utilization > 0.95

    def test_memory_flat(self, traces):
        t67, _ = traces
        _, _, mem, _ = t67.arrays()
        assert mem.std() / mem.mean() < 0.01

    def test_oversized_working_set_rejected(self, traces):
        zero = SIM.step(M67, ParallelConfig(dp=256, zero_stage=1))
        with pytest.raises(ValueError):
            sample_run(zero, memory_gb=100.0)

    def test_table_iv_efficiency_ordering(self, traces):
        """TFLOPS/W: 1.7B ~0.33 > 6.7B ~0.27 (Table IV)."""
        t67, t17 = traces
        eff17 = 2 * SIM.per_gcd_tflops(M17, ParallelConfig(dp=256)) / t17.mean_power
        eff67 = 2 * SIM.per_gcd_tflops(
            M67, ParallelConfig(dp=256, zero_stage=1)) / t67.mean_power
        assert eff17 > eff67
        assert 0.27 < eff17 < 0.40
        assert 0.20 < eff67 < 0.33


class TestBreakdown:
    def test_fig10_gemm_share_grows_with_scale(self):
        med = layer_breakdown(preset("neox-1.7b-hf-52k"), flash=0)
        big = layer_breakdown(preset("neox-6.7b-hf-52k"), flash=0)
        assert big.gemm_fraction > med.gemm_fraction > 0.6

    def test_fig10_qkv_and_mlp_dominate_gemms(self):
        shares = layer_breakdown(preset("neox-6.7b-hf-52k"),
                                 flash=2).gemm_shares()
        ranked = sorted(shares, key=shares.get, reverse=True)
        assert set(ranked[:2]) == {"qkv", "mlp"}

    def test_fig10_flash_merges_score_aov(self):
        flash = layer_breakdown(preset("neox-1.7b-hf-52k"), flash=2)
        noflash = layer_breakdown(preset("neox-1.7b-hf-52k"), flash=0)
        assert "flash" in flash.gemm_seconds
        assert "score" not in flash.gemm_seconds
        assert {"score", "aov"} <= set(noflash.gemm_seconds)

    def test_shares_sum_to_one(self):
        bd = layer_breakdown(preset("neox-1.7b-hf-52k"), flash=2)
        assert sum(bd.component_shares().values()) == pytest.approx(1.0)
        assert sum(bd.gemm_shares().values()) == pytest.approx(1.0)

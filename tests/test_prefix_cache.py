"""Tests for the prefix/KV reuse subsystem: radix prefix cache over the
packed KV pool, session-aware workloads, eviction-vs-preemption rules,
cache-on/off output parity, and the perf-bench ratchet."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import lint_source, resolve_rules
from repro.bench import compare_perf_baseline
from repro.cli import main
from repro.models import GPTModel, PackedKVPool, preset
from repro.serving import (CacheStats, ClusterConfig, ClusterSimulator,
                           KVPoolConfig, PagedKVPool, RadixPrefixCache,
                           ServingConfig, ServingEngine,
                           SessionWorkloadConfig, WorkloadConfig,
                           synthesize_sessions, synthesize_workload)


@pytest.fixture(scope="module")
def model():
    return GPTModel(preset("tiny-llama"), seed=0)


def timing_cache(block=4, capacity=8, **kw):
    return RadixPrefixCache(block_tokens=block, capacity_blocks=capacity,
                            store_kv=False, **kw)


def kv_cache(block=4, capacity=8, layers=2, heads=2, dim=4, **kw):
    return RadixPrefixCache(block_tokens=block, capacity_blocks=capacity,
                            num_layers=layers, num_kv_heads=heads,
                            head_dim=dim, store_kv=True, **kw)


def seeded_pool(layers=2, heads=2, dim=4, tokens=16, seed=0):
    """A packed pool with one leased slot holding ``tokens`` random KV."""
    pool = PackedKVPool(layers, heads, dim, num_slots=8, max_len=64,
                        block_tokens=4)
    slot = pool.acquire()
    rng = np.random.default_rng(seed)
    k = [rng.normal(size=(heads, tokens, dim)) for _ in range(layers)]
    v = [rng.normal(size=(heads, tokens, dim)) for _ in range(layers)]
    pool.import_span(slot, 0, k, v)
    return pool, slot, (k, v)


class TestRadixCacheStructure:
    def test_fresh_cache_misses(self):
        cache = timing_cache()
        match = cache.match(np.arange(12))
        assert not match.hit and match.tokens == 0
        assert cache.stats.lookups == 1 and cache.stats.hits == 0

    def test_insert_then_match_caps_below_prompt_len(self):
        cache = timing_cache(block=4)
        prompt = np.arange(12)
        assert cache.insert(prompt) == 3
        # A full-prompt match must drop trailing blocks so at least one
        # token remains to forward for first-token logits.
        match = cache.match(prompt)
        assert match.tokens == 8
        cache.release(match)
        # A longer prompt sharing the prefix matches all 12 tokens.
        longer = cache.match(np.concatenate([prompt, np.arange(100, 108)]))
        assert longer.tokens == 12
        cache.release(longer)

    def test_partial_prefix_divergence(self):
        cache = timing_cache(block=4)
        cache.insert(np.arange(12))
        other = np.concatenate([np.arange(4), np.arange(50, 62)])
        match = cache.match(other)
        assert match.tokens == 4  # shares only the first block
        cache.release(match)

    def test_sub_block_prompt_never_matches(self):
        cache = timing_cache(block=8)
        cache.insert(np.arange(16))
        assert not cache.match(np.arange(5)).hit

    def test_insert_is_idempotent(self):
        cache = timing_cache(block=4)
        prompt = np.arange(12)
        assert cache.insert(prompt) == 3
        assert cache.insert(prompt) == 0
        assert cache.num_blocks == 3

    def test_release_twice_raises(self):
        cache = timing_cache(block=4)
        cache.insert(np.arange(8))
        match = cache.match(np.arange(12))
        cache.release(match)
        with pytest.raises(ValueError, match="released more than once"):
            cache.release(match)

    def test_capacity_bound_holds(self):
        cache = timing_cache(block=4, capacity=3)
        for base in range(6):
            cache.insert(np.arange(base * 100, base * 100 + 8))
        assert cache.num_blocks <= 3
        assert cache.stats.evicted_blocks > 0


class TestEviction:
    def test_lru_order(self):
        cache = timing_cache(block=4, capacity=8)
        old = np.arange(8)
        new = np.arange(100, 108)
        cache.insert(old)
        cache.insert(new)
        touch = cache.match(np.concatenate([old, old]))  # refresh old
        cache.release(touch)
        cache.evict(2)
        assert cache.match(np.concatenate([old, old])).tokens == 8
        assert not cache.match(np.concatenate([new, new])).hit

    def test_referenced_blocks_survive_full_evict(self):
        cache = timing_cache(block=4, capacity=8)
        pinned = np.arange(8)
        cache.insert(pinned)
        cache.insert(np.arange(100, 108))
        held = cache.match(np.concatenate([pinned, pinned]))
        cache.evict(100)
        assert cache.referenced_blocks == 2
        again = cache.match(np.concatenate([pinned, pinned]))
        assert again.tokens == 8
        cache.release(again)
        cache.release(held)
        cache.evict(100)
        assert cache.num_blocks == 0

    def test_interior_nodes_outlive_their_children(self):
        cache = timing_cache(block=4, capacity=8)
        cache.insert(np.arange(16))  # chain of 4 blocks
        cache.evict(1)
        # Only the deepest leaf goes; the prefix chain stays intact.
        assert cache.num_blocks == 3
        assert cache.match(np.arange(17)).tokens == 12

    def test_paged_pool_accounting(self):
        pool = PagedKVPool(preset("tiny-llama"),
                           KVPoolConfig(block_size=4, num_blocks=8))
        cache = timing_cache(block=4, capacity=8, paged_pool=pool)
        cache.insert(np.arange(12))
        assert pool.blocks_free == 5
        cache.evict(100)
        assert pool.blocks_free == 8

    def test_paged_pool_pressure_stops_insert(self):
        pool = PagedKVPool(preset("tiny-llama"),
                           KVPoolConfig(block_size=4, num_blocks=2))
        cache = timing_cache(block=4, capacity=8, paged_pool=pool)
        assert pool.allocate(7, 4)  # a "request" holds one block
        assert cache.insert(np.arange(12)) == 1  # only one block left
        assert pool.blocks_free == 0


class TestKVMode:
    def test_copy_into_round_trips_kv(self):
        pool, slot, (k, v) = seeded_pool(tokens=16)
        cache = kv_cache(block=4)
        assert cache.insert(np.arange(16), source=pool, slot=slot) == 4
        match = cache.match(np.arange(20))
        assert match.tokens == 16
        dest = pool.acquire()
        cache.copy_into(match, pool, dest)
        k_out, v_out = pool.export_span(dest, 0, 16)
        for layer in range(2):
            np.testing.assert_array_equal(k_out[layer], k[layer])
            np.testing.assert_array_equal(v_out[layer], v[layer])
        cache.release(match)

    def test_store_slot_refcounts_mirror_matches(self):
        pool, slot, _ = seeded_pool(tokens=8)
        cache = kv_cache(block=4)
        cache.insert(np.arange(8), source=pool, slot=slot)
        node = cache.match(np.arange(12)).path[0]
        base = cache.store.refcount(node.slot)
        m2 = cache.match(np.arange(12))
        assert cache.store.refcount(node.slot) == base + 1
        cache.release(m2)
        assert cache.store.refcount(node.slot) == base

    @settings(max_examples=25, deadline=None)
    @given(prompts=st.lists(
        st.lists(st.integers(0, 3), min_size=8, max_size=16),
        min_size=1, max_size=6), held_idx=st.integers(0, 5))
    def test_referenced_kv_never_corrupted(self, prompts, held_idx):
        """The shared-block safety property: while a match is held, its
        KV bytes survive arbitrary inserts and full-pressure evictions
        bit for bit."""
        held_idx %= len(prompts)
        held_prompt = np.asarray(prompts[held_idx], dtype=np.int64)
        pool, slot, _ = seeded_pool(tokens=16, seed=3)
        cache = kv_cache(block=4, capacity=3)
        cache.insert(held_prompt[:16], source=pool, slot=slot)
        match = cache.match(np.concatenate([held_prompt, held_prompt]))
        if not match.hit:
            return
        before = pool.acquire()
        cache.copy_into(match, pool, before)
        expect = pool.export_span(before, 0, match.tokens)
        for p in prompts:  # churn: inserts force eviction pressure
            cache.insert(np.asarray(p, dtype=np.int64)[:16],
                         source=pool, slot=slot)
            cache.evict(100)
        for node in match.path:  # still resident, still referenced
            assert node.refcount >= 1
        after_slot = pool.acquire()
        cache.copy_into(match, pool, after_slot)
        got = pool.export_span(after_slot, 0, match.tokens)
        for layer in range(2):
            np.testing.assert_array_equal(got[0][layer], expect[0][layer])
            np.testing.assert_array_equal(got[1][layer], expect[1][layer])
        cache.release(match)


class TestCacheStats:
    def test_rates(self):
        stats = CacheStats(lookups=4, hits=3, hit_tokens=30,
                           lookup_tokens=60)
        assert stats.hit_rate == 0.75
        assert stats.token_hit_rate == 0.5
        assert CacheStats().hit_rate == 0.0

    def test_merged_sums_counters(self):
        a = CacheStats(lookups=2, hits=1, hit_tokens=8, lookup_tokens=20,
                       inserted_blocks=3, evictions=1, evicted_blocks=2)
        b = CacheStats(lookups=1, hits=1, hit_tokens=4, lookup_tokens=10)
        m = a.merged(b)
        assert (m.lookups, m.hits, m.hit_tokens) == (3, 2, 12)
        assert (m.inserted_blocks, m.evicted_blocks) == (3, 2)

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="block_tokens"):
            RadixPrefixCache(block_tokens=0, capacity_blocks=4,
                             store_kv=False)
        with pytest.raises(ValueError, match="capacity_blocks"):
            RadixPrefixCache(block_tokens=4, capacity_blocks=0,
                             store_kv=False)


class TestSessionWorkloads:
    def test_deterministic(self, model):
        cfg = SessionWorkloadConfig(num_sessions=6, seed=7)
        a = synthesize_sessions(cfg, model.config)
        b = synthesize_sessions(cfg, model.config)
        assert len(a) == len(b)
        for ra, rb in zip(a, b):
            np.testing.assert_array_equal(ra.prompt, rb.prompt)
            assert ra.arrival_time == rb.arrival_time
            assert ra.session_id == rb.session_id

    def test_turns_extend_history(self, model):
        reqs = synthesize_sessions(
            SessionWorkloadConfig(num_sessions=6, seed=1), model.config)
        by_session = {}
        for req in reqs:
            by_session.setdefault(req.session_id, []).append(req)
        multi = [turns for turns in by_session.values() if len(turns) > 1]
        assert multi, "expected at least one multi-turn session"
        for turns in multi:
            turns.sort(key=lambda r: r.arrival_time)
            for prev, cur in zip(turns, turns[1:]):
                assert cur.prompt.size > prev.prompt.size
                np.testing.assert_array_equal(
                    cur.prompt[:prev.prompt.size], prev.prompt)

    def test_system_prompts_are_shared(self, model):
        cfg = SessionWorkloadConfig(num_sessions=12,
                                    num_system_prompts=2, seed=0)
        reqs = synthesize_sessions(cfg, model.config)
        lo = cfg.system_prompt_len_range[0]
        heads = {tuple(r.prompt[:lo].tolist()) for r in reqs}
        assert len(heads) <= 2

    def test_arrival_order_and_ids(self, model):
        reqs = synthesize_sessions(
            SessionWorkloadConfig(num_sessions=8, seed=3), model.config)
        arrivals = [r.arrival_time for r in reqs]
        assert arrivals == sorted(arrivals)
        assert [r.request_id for r in reqs] == list(range(len(reqs)))

    def test_prompts_fit_context_budget(self, model):
        reqs = synthesize_sessions(
            SessionWorkloadConfig(num_sessions=16, seed=5), model.config)
        for req in reqs:
            assert req.prompt.size + req.max_new_tokens \
                <= model.config.max_seq_len

    def test_diurnal_ramp_stays_deterministic(self, model):
        cfg = SessionWorkloadConfig(num_sessions=8, diurnal_amplitude=0.8,
                                    diurnal_period_s=10.0, seed=2)
        a = synthesize_sessions(cfg, model.config)
        b = synthesize_sessions(cfg, model.config)
        assert [r.arrival_time for r in a] == [r.arrival_time for r in b]

    def test_overflowing_first_turn_rejected(self, model):
        cfg = SessionWorkloadConfig(system_prompt_len_range=(60, 64))
        with pytest.raises(ValueError, match="exceeds"):
            synthesize_sessions(cfg, model.config)

    @pytest.mark.parametrize("kwargs", [
        {"num_sessions": 0},
        {"arrival_rate": 0.0},
        {"arrival_rate": float("inf")},
        {"arrival_rate": float("nan")},
        {"turns_range": (0, 3)},
        {"turns_range": (4, 2)},
        {"think_time_s": -1.0},
        {"num_system_prompts": 0},
        {"user_len_range": (0, 4)},
        {"output_len_range": (8, 4)},
        {"diurnal_amplitude": 1.5},
        {"diurnal_amplitude": -0.1},
        {"diurnal_period_s": 0.0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            SessionWorkloadConfig(**kwargs)


class TestWorkloadValidation:
    @pytest.mark.parametrize("kwargs", [
        {"num_requests": 0},
        {"num_requests": -3},
        {"arrival_rate": 0.0},
        {"arrival_rate": -1.0},
        {"arrival_rate": float("inf")},
        {"prompt_len_range": (0, 8)},
        {"prompt_len_range": (9, 8)},
        {"output_len_range": (0, 4)},
    ])
    def test_rejects_degenerate_configs(self, kwargs):
        with pytest.raises(ValueError):
            WorkloadConfig(**kwargs)

    def test_error_messages_name_the_field(self):
        with pytest.raises(ValueError, match="arrival_rate"):
            WorkloadConfig(arrival_rate=-2.0)
        with pytest.raises(ValueError, match="num_requests"):
            WorkloadConfig(num_requests=0)


def run_engine(model, requests, **config_kw):
    return ServingEngine(model, ServingConfig(**config_kw)).run(requests)


def session_requests(model, **kw):
    kw.setdefault("num_sessions", 8)
    kw.setdefault("arrival_rate", 50.0)
    kw.setdefault("think_time_s", 0.01)
    kw.setdefault("seed", 0)
    return synthesize_sessions(SessionWorkloadConfig(**kw), model.config)


class TestEngineIntegration:
    def test_cache_on_off_outputs_identical(self, model):
        on = run_engine(model, session_requests(model), prefix_cache=True)
        off = run_engine(model, session_requests(model))
        assert sorted(on.outputs) == sorted(off.outputs)
        for rid in on.outputs:
            np.testing.assert_array_equal(on.outputs[rid],
                                          off.outputs[rid])
        assert on.metrics.prefill_tokens_saved > 0
        assert on.metrics.cache_hit_rate > 0

    def test_cache_parity_under_chunked_prefill(self, model):
        on = run_engine(model, session_requests(model), prefix_cache=True,
                        prefill_chunk_tokens=8)
        off = run_engine(model, session_requests(model),
                         prefill_chunk_tokens=8)
        for rid in on.outputs:
            np.testing.assert_array_equal(on.outputs[rid],
                                          off.outputs[rid])
        assert on.metrics.prefill_tokens_saved > 0

    def test_cached_prefix_lowers_mean_ttft(self, model):
        on = run_engine(model, session_requests(model), prefix_cache=True)
        off = run_engine(model, session_requests(model))
        assert on.metrics.ttft_mean < off.metrics.ttft_mean

    def test_cache_survives_tiny_pool_pressure(self, model):
        # A pool small enough to force cache eviction / preemption
        # interplay must still complete every request correctly.
        reqs = session_requests(model, num_sessions=6)
        on = run_engine(model, session_requests(model, num_sessions=6),
                        prefix_cache=True, prefix_cache_blocks=4,
                        num_blocks=24, max_batch_size=2)
        off = run_engine(model, reqs, num_blocks=24, max_batch_size=2)
        assert on.metrics.num_requests == len(reqs)
        for rid in on.outputs:
            np.testing.assert_array_equal(on.outputs[rid],
                                          off.outputs[rid])

    def test_no_livelock_under_bursty_arrivals(self, model):
        # Regression: when every session arrives near-instantly and the
        # pool is tiny, a request that pinned its matched cache blocks
        # for its whole lifetime (on top of its private copy) would
        # double-count pool demand and admission could never converge.
        # The match must be released as soon as the KV is copied.
        reqs = session_requests(model, arrival_rate=1000.0)
        on = run_engine(model, session_requests(model, arrival_rate=1000.0),
                        prefix_cache=True, prefix_cache_blocks=8,
                        num_blocks=20, block_size=4)
        off = run_engine(model, reqs, num_blocks=20, block_size=4)
        assert on.metrics.num_requests == len(reqs)
        for rid in on.outputs:
            np.testing.assert_array_equal(on.outputs[rid],
                                          off.outputs[rid])

    def test_cache_events_reach_the_trace(self, model):
        result = run_engine(model, session_requests(model),
                            prefix_cache=True)
        cats = {e.category
                for lanes in result.lanes.values()
                for lane_events in lanes.values()
                for e in lane_events}
        assert "cache-hit" in cats and "cache-miss" in cats

    def test_iid_workload_barely_hits(self, model):
        # i.i.d. prompts share no structure: the cache must not invent
        # hits (and must not corrupt outputs either).
        wl = WorkloadConfig(num_requests=12, arrival_rate=2000.0, seed=0)
        reqs = synthesize_workload(wl, model.config)
        on = run_engine(model, synthesize_workload(wl, model.config),
                        prefix_cache=True)
        off = run_engine(model, reqs)
        for rid in on.outputs:
            np.testing.assert_array_equal(on.outputs[rid],
                                          off.outputs[rid])

    def test_config_knobs_validated(self):
        with pytest.raises(ValueError, match="prefix_cache_blocks"):
            ServingConfig(prefix_cache_blocks=0)


class TestClusterIntegration:
    def test_session_traffic_hits_replica_caches(self):
        config = preset("tiny-llama")
        reqs = synthesize_sessions(
            SessionWorkloadConfig(num_sessions=10, arrival_rate=200.0,
                                  think_time_s=0.005, seed=0), config)
        sim = ClusterSimulator(config, ClusterConfig(
            num_nodes=1, policy="round-robin",
            serving=ServingConfig(prefix_cache=True)))
        result = sim.run(reqs)
        assert result.metrics.num_requests == len(reqs)
        assert result.metrics.cache_lookups == len(reqs)
        assert result.metrics.prefill_tokens_saved > 0

    def test_cache_off_by_default(self):
        config = preset("tiny-llama")
        reqs = synthesize_sessions(
            SessionWorkloadConfig(num_sessions=4, seed=0), config)
        sim = ClusterSimulator(config, ClusterConfig(num_nodes=1))
        result = sim.run(reqs)
        assert result.metrics.cache_lookups == 0


class TestPerfRatchet:
    def base(self, speedups=(1.0, 2.0), overhead=1.5):
        return {
            "decode": [{"batch_size": b, "speedup": s}
                       for b, s in zip((1, 8), speedups)],
            "prefill": {"overhead_ratio": overhead},
        }

    def test_identical_results_pass(self):
        assert compare_perf_baseline(self.base(), self.base()) == []

    def test_improvement_passes(self):
        assert compare_perf_baseline(self.base(speedups=(2.0, 4.0),
                                               overhead=1.0),
                                     self.base()) == []

    def test_decode_regression_fails(self):
        problems = compare_perf_baseline(self.base(speedups=(1.0, 1.0)),
                                         self.base())
        assert len(problems) == 1 and "batch 8" in problems[0]

    def test_prefill_regression_fails(self):
        problems = compare_perf_baseline(self.base(overhead=2.5),
                                         self.base())
        assert len(problems) == 1 and "prefill" in problems[0]

    def test_within_threshold_tolerated(self):
        assert compare_perf_baseline(self.base(speedups=(0.8, 1.6)),
                                     self.base()) == []

    def test_unknown_batch_sizes_ignored(self):
        results = {"decode": [{"batch_size": 32, "speedup": 0.1}],
                   "prefill": {"overhead_ratio": 1.5}}
        assert compare_perf_baseline(results, self.base()) == []

    def test_threshold_validated(self):
        with pytest.raises(ValueError, match="threshold"):
            compare_perf_baseline(self.base(), self.base(), threshold=0.0)
        with pytest.raises(ValueError, match="threshold"):
            compare_perf_baseline(self.base(), self.base(), threshold=1.0)


class TestLintMissingAll:
    RULES = resolve_rules("RPR004")

    def lint(self, source):
        return lint_source(source, "src/repro/serving/mod.py", self.RULES)

    def test_public_def_without_all_flagged(self):
        findings = self.lint("def run(x):\n    return x\n")
        assert any("no __all__" in f.message for f in findings)

    def test_declared_all_clean(self):
        assert self.lint("__all__ = ['run']\n\n"
                         "def run(x):\n    return x\n") == []

    def test_private_only_module_clean(self):
        assert self.lint("def _helper(x):\n    return x\n") == []

    def test_star_import_exempt(self):
        assert self.lint("from os.path import *\n\n"
                         "def run(x):\n    return x\n") == []


class TestCli:
    def test_serve_bench_sessions_compare_cache(self, capsys):
        assert main(["serve-bench", "--sessions", "4",
                     "--compare-cache"]) == 0
        out = capsys.readouterr().out
        assert "prefix cache hit rate" in out
        assert "outputs match" in out

    def test_cluster_bench_sessions_cache(self, capsys):
        assert main(["cluster-bench", "--smoke", "--model", "tiny-llama",
                     "--sessions", "4", "--prefix-cache",
                     "--policy", "round-robin"]) == 0
        out = capsys.readouterr().out
        assert "hit%" in out

    def test_perf_bench_baseline_regression_exits_nonzero(
            self, tmp_path, capsys):
        import json
        absurd = {"decode": [{"batch_size": b, "speedup": 1000.0}
                             for b in (1, 2, 4, 8)],
                  "prefill": {"overhead_ratio": 1e-6}}
        path = tmp_path / "base.json"
        path.write_text(json.dumps(absurd))
        assert main(["perf-bench", "--smoke", "--output", "",
                     "--baseline", str(path)]) == 1
        assert "perf regression" in capsys.readouterr().out

    def test_perf_bench_baseline_missing_file_errors(self, tmp_path):
        assert main(["perf-bench", "--smoke", "--output", "",
                     "--baseline", str(tmp_path / "nope.json")]) == 2

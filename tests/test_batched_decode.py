"""Tests for the batched decode path: packed KV pool, single-forward
decode steps, chunked prefill, and the engine rewiring on top of them.

The correctness bar is bit-exactness against the sequential per-request
``_forward_cached`` path: the standard (non-flash) batched kernel groups
requests by context length so its matmul shapes match the sequential
ones exactly, and logits must be bitwise identical; the flash decode
kernel reassociates the softmax, so there the bar is token parity.
"""

import json

import numpy as np
import pytest

from repro.models import (GPTModel, KVCache, ModelConfig, PackedKVPool,
                          PackedSlotCache, preset)
from repro.serving import (DecodeCostModel, Request, ServingConfig,
                           ServingEngine)


def tiny_config(arch="llama", kv_heads=None, flash=0):
    return ModelConfig(arch=arch, hidden_size=64, num_layers=2,
                       num_heads=4, num_kv_heads=kv_heads, vocab_size=512,
                       max_seq_len=64, flash_attention=flash,
                       name=f"tiny-{arch}-kv{kv_heads}-f{flash}")


def ragged_prompts(config, lengths=(5, 9, 13, 7), seed=0):
    rng = np.random.default_rng(seed)
    return [rng.integers(0, config.vocab_size, size=n) for n in lengths]


def sequential_reference(model, prompts, new_tokens):
    """Per-request cached decode: the pre-batching ground truth."""
    tokens, logits_hist = [], []
    for prompt in prompts:
        caches = [KVCache() for _ in model.layers]
        logits = model._forward_cached(prompt[None], caches)
        out = [int(logits.data[0, -1].argmax())]
        hist = []
        for _ in range(new_tokens - 1):
            step = np.array([[out[-1]]], dtype=np.int64)
            logits = model._forward_cached(step, caches)
            hist.append(logits.data[0, -1].copy())
            out.append(int(logits.data[0, -1].argmax()))
        tokens.append(out)
        logits_hist.append(hist)
    return tokens, logits_hist


def batched_decode(model, prompts, new_tokens):
    """Pool-backed decode: prefill into slots, then batched steps."""
    pool = PackedKVPool.for_model(model.config, num_slots=len(prompts))
    slots, tokens = [], []
    for prompt in prompts:
        slot = pool.acquire()
        logits = model._forward_cached(prompt[None],
                                       pool.slot_caches(slot))
        slots.append(slot)
        tokens.append([int(logits.data[0, -1].argmax())])
    logits_hist = [[] for _ in prompts]
    for _ in range(new_tokens - 1):
        logits = model.decode_step_batched(
            np.array([t[-1] for t in tokens], dtype=np.int64), pool, slots)
        for i in range(len(prompts)):
            logits_hist[i].append(logits[i].copy())
            tokens[i].append(int(logits[i].argmax()))
    return tokens, logits_hist


class TestPackedKVPool:
    def test_acquire_release_cycle(self):
        pool = PackedKVPool(num_layers=2, num_kv_heads=4, head_dim=8,
                            num_slots=3, max_len=64)
        slots = [pool.acquire() for _ in range(3)]
        assert sorted(slots) == [0, 1, 2]
        assert pool.slots_in_use == 3
        with pytest.raises(RuntimeError):
            pool.acquire()
        pool.release(slots[1])
        assert pool.slots_in_use == 2
        assert pool.acquire() == slots[1]

    def test_release_unleased_slot_raises(self):
        pool = PackedKVPool(num_layers=1, num_kv_heads=2, head_dim=4,
                            num_slots=2, max_len=16)
        with pytest.raises(ValueError):
            pool.release(0)

    def test_release_zeroes_lengths(self):
        pool = PackedKVPool(num_layers=1, num_kv_heads=2, head_dim=4,
                            num_slots=1, max_len=16)
        slot = pool.acquire()
        k = np.ones((1, 2, 3, 4))
        pool.append(0, slot, k, k)
        assert pool.length(0, slot) == 3
        pool.release(slot)
        slot = pool.acquire()
        assert pool.length(0, slot) == 0

    def test_growth_rounds_to_block_multiple(self):
        pool = PackedKVPool(num_layers=1, num_kv_heads=1, head_dim=2,
                            num_slots=1, max_len=128, block_tokens=16)
        slot = pool.acquire()
        assert pool.k[0].shape[2] == 16
        k = np.zeros((1, 1, 17, 2))
        pool.append(0, slot, k, k)
        # 2*16=32 < 17 doubled-from? need=17, 2*cap=32 -> 32, already a
        # block multiple
        assert pool.k[0].shape[2] == 32
        assert pool.k[0].shape[2] % 16 == 0
        assert pool.grow_count == 1

    def test_growth_is_amortized(self):
        pool = PackedKVPool(num_layers=1, num_kv_heads=1, head_dim=2,
                            num_slots=1, max_len=512, block_tokens=4)
        slot = pool.acquire()
        k = np.zeros((1, 1, 1, 2))
        for _ in range(512):
            pool.append(0, slot, k, k)
        # Geometric doubling: O(log n) grows, not O(n).
        assert pool.grow_count <= 9

    def test_overflow_raises(self):
        pool = PackedKVPool(num_layers=1, num_kv_heads=1, head_dim=2,
                            num_slots=1, max_len=8)
        slot = pool.acquire()
        k = np.zeros((1, 1, 9, 2))
        with pytest.raises(ValueError):
            pool.append(0, slot, k, k)

    def test_memory_vs_capacity_bytes(self):
        pool = PackedKVPool(num_layers=1, num_kv_heads=2, head_dim=4,
                            num_slots=2, max_len=64, block_tokens=16)
        slot = pool.acquire()
        k = np.ones((1, 2, 3, 4))
        pool.append(0, slot, k, k)
        # Logical: 3 tokens * 2 (K+V) * 2 heads * 4 dim * 2 B.
        assert pool.memory_bytes() == 3 * 2 * 2 * 4 * 2
        # Physical: both slots' full capacity, regardless of use.
        assert pool.capacity_bytes() == 2 * 2 * 16 * 4 * 2 * 2

    def test_append_batched_matches_append(self):
        pool = PackedKVPool(num_layers=1, num_kv_heads=2, head_dim=4,
                            num_slots=2, max_len=16)
        ref = PackedKVPool(num_layers=1, num_kv_heads=2, head_dim=4,
                           num_slots=2, max_len=16)
        slots = [pool.acquire(), pool.acquire()]
        rslots = [ref.acquire(), ref.acquire()]
        rng = np.random.default_rng(0)
        for step in range(5):
            k = rng.standard_normal((2, 2, 1, 4))
            v = rng.standard_normal((2, 2, 1, 4))
            lengths = pool.append_batched(0, slots, k, v)
            for i, rslot in enumerate(rslots):
                ref.append(0, rslot, k[i:i + 1], v[i:i + 1])
            assert list(lengths) == [step + 1, step + 1]
        k_b, v_b = pool.gather(0, slots, 5)
        k_r, v_r = ref.gather(0, rslots, 5)
        np.testing.assert_array_equal(k_b, k_r)
        np.testing.assert_array_equal(v_b, v_r)

    def test_slot_caches_speak_kvcache_protocol(self):
        config = tiny_config()
        model = GPTModel(config, seed=0)
        pool = PackedKVPool.for_model(config, num_slots=1)
        slot = pool.acquire()
        caches = pool.slot_caches(slot)
        assert all(isinstance(c, PackedSlotCache) for c in caches)
        prompt = ragged_prompts(config, (6,))[0]
        logits_pool = model._forward_cached(prompt[None], caches)
        plain = [KVCache() for _ in model.layers]
        logits_ref = model._forward_cached(prompt[None], plain)
        np.testing.assert_array_equal(logits_pool.data, logits_ref.data)
        assert caches[0].length == 6
        assert caches[0].memory_bytes() == plain[0].memory_bytes()

    def test_for_model_uses_config_geometry(self):
        config = tiny_config(kv_heads=2)
        pool = PackedKVPool.for_model(config, num_slots=4)
        assert len(pool.k) == config.num_layers
        assert pool.k[0].shape[0] == 4
        assert pool.k[0].shape[1] == 2
        assert pool.max_len == config.max_seq_len


class TestKVCacheGrowth:
    def test_geometric_capacity(self):
        cache = KVCache()
        k = np.zeros((1, 2, 1, 4))
        grows = 0
        last_cap = 0
        for _ in range(100):
            cache.append(k, k)
            if cache.capacity != last_cap:
                grows += 1
                last_cap = cache.capacity
        assert cache.length == 100
        assert cache.capacity >= 100
        assert grows <= 9

    def test_views_expose_logical_length(self):
        cache = KVCache()
        rng = np.random.default_rng(0)
        chunks = [rng.standard_normal((1, 2, n, 4)) for n in (3, 1, 5)]
        for chunk in chunks:
            k_view, v_view = cache.append(chunk, chunk)
        full = np.concatenate(chunks, axis=2)
        np.testing.assert_array_equal(k_view, full)
        np.testing.assert_array_equal(v_view, full)

    def test_memory_bytes_is_logical_capacity_physical(self):
        cache = KVCache()
        k = np.zeros((1, 2, 3, 4))
        cache.append(k, k)
        logical = 2 * 2 * 2 * 3 * 4  # fp16 * K+V * heads * len * dim
        assert cache.memory_bytes() == logical
        assert cache.capacity_bytes() >= logical


@pytest.mark.parametrize("arch", ["neox", "llama"])
@pytest.mark.parametrize("kv_heads", [None, 2])
@pytest.mark.parametrize("flash", [0, 1])
class TestBatchedDecodeParity:
    def test_tokens_match_sequential(self, arch, kv_heads, flash):
        config = tiny_config(arch, kv_heads, flash)
        model = GPTModel(config, seed=0)
        prompts = ragged_prompts(config)
        ref_tokens, ref_logits = sequential_reference(model, prompts, 6)
        bat_tokens, bat_logits = batched_decode(model, prompts, 6)
        assert bat_tokens == ref_tokens
        if not flash:
            # Grouped-by-length standard kernel: bitwise, not approx.
            for ref_hist, bat_hist in zip(ref_logits, bat_logits):
                for ref_row, bat_row in zip(ref_hist, bat_hist):
                    np.testing.assert_array_equal(bat_row, ref_row)


def test_same_length_batch_single_group():
    """Uniform contexts exercise the no-mask fast path, still bitwise."""
    config = tiny_config("llama", 2, 0)
    model = GPTModel(config, seed=0)
    prompts = ragged_prompts(config, (8, 8, 8))
    ref_tokens, ref_logits = sequential_reference(model, prompts, 5)
    bat_tokens, bat_logits = batched_decode(model, prompts, 5)
    assert bat_tokens == ref_tokens
    for ref_hist, bat_hist in zip(ref_logits, bat_logits):
        for ref_row, bat_row in zip(ref_hist, bat_hist):
            np.testing.assert_array_equal(bat_row, ref_row)


@pytest.mark.parametrize("arch", ["neox", "llama"])
def test_chunked_prefill_bitwise(arch):
    """Block-aligned chunks reproduce monolithic prefill bit-for-bit."""
    config = tiny_config(arch)
    model = GPTModel(config, seed=0)
    prompt = ragged_prompts(config, (48,))[0]
    mono = [KVCache() for _ in model.layers]
    ref = model._forward_cached(prompt[None], mono)
    chunked = [KVCache() for _ in model.layers]
    for pos in range(0, 48, 16):
        logits = model._forward_cached(prompt[None, pos:pos + 16], chunked)
    np.testing.assert_array_equal(logits.data[0, -1], ref.data[0, -1])
    for mc, cc in zip(mono, chunked):
        np.testing.assert_array_equal(mc.k[:, :, :mc.length],
                                      cc.k[:, :, :cc.length])


def make_requests(config, specs):
    rng = np.random.default_rng(1)
    return [Request(request_id=i,
                    prompt=rng.integers(0, config.vocab_size, size=plen),
                    max_new_tokens=new, arrival_time=at)
            for i, (plen, new, at) in enumerate(specs)]


class TestEngineBatched:
    def test_engine_matches_generate(self):
        config = preset("tiny-llama")
        model = GPTModel(config, seed=0)
        requests = make_requests(
            config, [(5, 6, 0.0), (9, 4, 0.0005), (13, 5, 0.001),
                     (7, 6, 0.0015), (11, 3, 0.002)])
        engine = ServingEngine(model, ServingConfig(max_batch_size=4))
        result = engine.run(requests)
        for req in requests:
            expected = model.generate(req.prompt, req.max_new_tokens,
                                      use_cache=True)
            assert req.output == list(expected[req.prompt_len:])
        assert result.metrics.num_requests == len(requests)

    def test_chunked_outputs_equal_monolithic(self):
        config = preset("tiny-llama")
        model = GPTModel(config, seed=0)
        specs = [(5, 6, 0.0), (9, 4, 0.0005), (13, 5, 0.001),
                 (7, 6, 0.0015)]
        mono = ServingEngine(model, ServingConfig(max_batch_size=4))
        mono_result = mono.run(make_requests(config, specs))
        chunked = ServingEngine(model, ServingConfig(
            max_batch_size=4, prefill_chunk_tokens=4))
        chunk_result = chunked.run(make_requests(config, specs))
        assert sorted(chunk_result.outputs) == sorted(mono_result.outputs)
        for rid, tokens in mono_result.outputs.items():
            np.testing.assert_array_equal(chunk_result.outputs[rid],
                                          tokens)

    def test_billed_time_matches_executed_shape(self):
        """Every decode step is billed at the batch shape it ran."""
        config = preset("tiny-llama")
        calls = []

        class SpyCost(DecodeCostModel):
            def decode_step_time(self, batch_size, total_context_tokens):
                calls.append((batch_size, total_context_tokens))
                return super().decode_step_time(batch_size,
                                                total_context_tokens)

        model = GPTModel(config, seed=0)
        engine = ServingEngine(model, ServingConfig(max_batch_size=4),
                               cost_model=SpyCost(config))
        result = engine.run(make_requests(
            config, [(5, 6, 0.0), (9, 4, 0.0005), (13, 5, 0.001)]))
        assert calls, "decode steps must be billed through the cost model"
        # No phantom batches: every billed shape had real survivors.
        assert all(b >= 1 and ctx >= b for b, ctx in calls)
        # Each billed slot produced exactly one token; the first token of
        # every request comes from prefill, not a decode step.
        decode_tokens = sum(rec.output_len - 1 for rec in result.records)
        assert sum(b for b, _ in calls) == decode_tokens

    def test_pool_slots_recycled(self):
        config = preset("tiny-llama")
        model = GPTModel(config, seed=0)
        engine = ServingEngine(model, ServingConfig(max_batch_size=2))
        engine.run(make_requests(
            config, [(5, 3, 0.0), (6, 3, 0.001), (7, 3, 0.002),
                     (8, 3, 0.003), (9, 3, 0.004)]))
        assert engine.packed.slots_in_use == 0


class TestChunkedPrefillTTFT:
    def test_chunking_bounds_late_short_ttft(self):
        """A long prompt must not head-of-line block later shorts.

        Executes a tiny model (fast) but bills with the default big
        model's cost (compute-bound prefill), via the cost-model
        injection seam.  With monolithic prefill the long prompt's
        whole prefill lands ahead of the late shorts; with chunked
        prefill the shorts' chunks preempt it (SRPT), so their TTFT
        stays below one long-prefill time.
        """
        exec_config = ModelConfig(arch="llama", hidden_size=64,
                                  num_layers=2, num_heads=4,
                                  vocab_size=512, max_seq_len=2048,
                                  name="tiny-long")
        bill = DecodeCostModel(ModelConfig())
        model = GPTModel(exec_config, seed=0)
        specs = [(16, 2, 0.0), (1024, 2, 0.001), (16, 2, 0.002),
                 (16, 2, 0.003), (16, 2, 0.004)]

        def run(chunk):
            engine = ServingEngine(model, ServingConfig(
                max_batch_size=8, max_batch_tokens=8192,
                prefill_chunk_tokens=chunk),
                cost_model=DecodeCostModel(ModelConfig()))
            return engine.run(make_requests(exec_config, specs))

        mono, chunked = run(None), run(256)
        for rid, tokens in mono.outputs.items():
            np.testing.assert_array_equal(chunked.outputs[rid], tokens)

        def late_short_ttfts(result):
            return [rec.ttft for rec in result.records
                    if rec.prompt_len == 16 and rec.arrival > 0.001]

        long_prefill = bill.prefill_time(1024)
        assert max(late_short_ttfts(chunked)) < long_prefill
        assert max(late_short_ttfts(mono)) >= long_prefill

    def test_chunked_prefill_time_adds_kv_reread(self):
        cost = DecodeCostModel(ModelConfig())
        base = cost.prefill_time(256)
        assert cost.chunked_prefill_time(256, 0) == base
        assert cost.chunked_prefill_time(256, 512) > base
        with pytest.raises(ValueError):
            cost.chunked_prefill_time(0)
        with pytest.raises(ValueError):
            cost.chunked_prefill_time(16, -1)

    def test_config_validates_chunk(self):
        with pytest.raises(ValueError):
            ServingConfig(prefill_chunk_tokens=0)
        assert ServingConfig(prefill_chunk_tokens=None) \
            .prefill_chunk_tokens is None


class TestPerfBenchCLI:
    def test_smoke_writes_json(self, tmp_path, capsys):
        from repro.cli import main
        out = tmp_path / "bench.json"
        code = main(["perf-bench", "--smoke", "--batch-sizes", "1,2",
                     "--prompt", "8", "--tokens", "4",
                     "--prefill-len", "16", "--chunk", "8",
                     "--output", str(out)])
        assert code == 0
        data = json.loads(out.read_text())
        assert [row["batch_size"] for row in data["decode"]] == [1, 2]
        assert all(row["tokens_match"] for row in data["decode"])
        assert data["prefill"]["tokens_match"]
        assert "speedup" in capsys.readouterr().out

"""Tests for training-run planning (loss → tokens → hours → energy)."""

import numpy as np
import pytest

from repro.core import plan_run, tokens_to_reach_loss
from repro.models import preset
from repro.training import LossCurveModel, LossRecipe

M17 = preset("neox-1.7b-hf-52k").with_flash(1)
M67 = preset("neox-6.7b-hf-52k").with_flash(1)


class TestTokensToReachLoss:
    def test_inverts_the_surrogate(self):
        lm = LossCurveModel(noise=0.0)
        recipe = LossRecipe(params=1.7e9)
        tokens = tokens_to_reach_loss(2.55, recipe, lm)
        # Plugging the answer back into the forward model recovers the loss.
        achieved = lm.expected_final_loss(
            LossRecipe(params=1.7e9, total_tokens=tokens))
        assert achieved == pytest.approx(2.55, abs=1e-6)

    def test_lower_target_needs_more_tokens(self):
        recipe = LossRecipe(params=1.7e9)
        assert tokens_to_reach_loss(2.52, recipe) > \
            tokens_to_reach_loss(2.60, recipe)

    def test_bigger_model_needs_fewer_tokens(self):
        small = LossRecipe(params=1.7e9)
        big = LossRecipe(params=6.7e9)
        assert tokens_to_reach_loss(2.55, big) < \
            tokens_to_reach_loss(2.55, small)

    def test_unreachable_target_raises(self):
        with pytest.raises(ValueError, match="unreachable"):
            tokens_to_reach_loss(1.0, LossRecipe(params=1.7e9))

    def test_absurd_token_budget_raises(self):
        recipe = LossRecipe(params=1.7e9)
        lm = LossCurveModel()
        asymptote_ish = lm.expected_final_loss(
            LossRecipe(params=1.7e9, total_tokens=1e15))
        with pytest.raises(ValueError, match="bigger model"):
            tokens_to_reach_loss(asymptote_ish + 1e-4, recipe,
                                 max_tokens=1e12)


class TestPlanRun:
    def test_plan_fields_consistent(self):
        plan = plan_run(M17, 2.55, 256)
        assert plan.layout == "DP"
        assert plan.tokens > 1e9
        assert plan.hours > 0
        assert plan.energy_mwh > 0
        assert "tokens" in plan.summary()

    def test_67b_plan_uses_guidance(self):
        plan = plan_run(M67, 2.45, 256)
        assert plan.layout == "TP=2"   # the advisor's pick at scale

    def test_more_gpus_less_time(self):
        fast = plan_run(M17, 2.55, 256)
        slow = plan_run(M17, 2.55, 64)
        assert fast.hours < slow.hours
        # Energy is roughly scale-invariant (same work), within comm losses.
        assert fast.energy_mwh < 2 * slow.energy_mwh

    def test_harder_target_costs_more(self):
        cheap = plan_run(M17, 2.60, 256)
        costly = plan_run(M17, 2.53, 256)
        assert costly.hours > cheap.hours
        assert costly.energy_mwh > cheap.energy_mwh

    def test_table_iv_scale_consistency(self):
        """A 15B-token-equivalent loss target prices out near Table IV."""
        lm = LossCurveModel(noise=0.0)
        loss_15b = lm.expected_final_loss(
            LossRecipe(params=float(M17.num_parameters()), arch="neox",
                       total_tokens=15e9))
        plan = plan_run(M17, loss_15b, 256)
        assert plan.tokens == pytest.approx(15e9, rel=0.01)
        assert 1.0 < plan.hours < 6.0       # paper: 4.1 h at ~28B tokens
        assert 0.05 < plan.energy_mwh < 0.4

"""Tests for rotary attention and the flash-attention execution path."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models import (CausalSelfAttention, RotaryEmbedding, Tensor,
                          flash_attention_forward)


def reference_attention(q, k, v, causal=True):
    """Naive O(n^2)-memory softmax attention for comparison."""
    d = q.shape[-1]
    scores = (q @ np.swapaxes(k, -1, -2)) / np.sqrt(d)
    if causal:
        n = q.shape[-2]
        mask = np.triu(np.ones((n, n), dtype=bool), k=1)
        scores = np.where(mask, -np.inf, scores)
    m = scores.max(axis=-1, keepdims=True)
    e = np.exp(scores - m)
    return (e / e.sum(axis=-1, keepdims=True)) @ v


class TestFlashAttention:
    @pytest.mark.parametrize("seq,block", [(16, 4), (17, 5), (32, 32),
                                           (33, 8), (8, 64)])
    def test_matches_reference_causal(self, seq, block):
        rng = np.random.default_rng(seq)
        q, k, v = (rng.normal(size=(2, 3, seq, 8)) for _ in range(3))
        out = flash_attention_forward(q, k, v, block_size=block, causal=True)
        np.testing.assert_allclose(out, reference_attention(q, k, v), atol=1e-10)

    def test_matches_reference_noncausal(self):
        rng = np.random.default_rng(7)
        q, k, v = (rng.normal(size=(1, 2, 24, 16)) for _ in range(3))
        out = flash_attention_forward(q, k, v, block_size=7, causal=False)
        np.testing.assert_allclose(out, reference_attention(q, k, v, causal=False),
                                   atol=1e-10)

    def test_block_size_never_changes_result(self):
        rng = np.random.default_rng(3)
        q, k, v = (rng.normal(size=(1, 1, 40, 8)) for _ in range(3))
        outs = [flash_attention_forward(q, k, v, block_size=b)
                for b in (1, 3, 8, 40, 100)]
        for o in outs[1:]:
            np.testing.assert_allclose(o, outs[0], atol=1e-10)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 30), st.integers(1, 16))
    def test_property_flash_equals_reference(self, seq, block):
        rng = np.random.default_rng(seq * 31 + block)
        q, k, v = (rng.normal(size=(1, 2, seq, 4)) for _ in range(3))
        np.testing.assert_allclose(
            flash_attention_forward(q, k, v, block_size=block),
            reference_attention(q, k, v), atol=1e-9)


class TestRotaryEmbedding:
    def test_preserves_norm(self):
        """Rotation is orthogonal: vector norms are unchanged."""
        rot = RotaryEmbedding(head_dim=8, max_seq_len=32)
        x = np.random.default_rng(0).normal(size=(1, 2, 16, 8))
        y = rot.apply(Tensor(x), 16).data
        np.testing.assert_allclose(np.linalg.norm(y, axis=-1),
                                   np.linalg.norm(x, axis=-1), atol=1e-9)

    def test_relative_position_property(self):
        """<RoPE(q,m), RoPE(k,n)> depends only on m - n."""
        rot = RotaryEmbedding(head_dim=8, max_seq_len=64)
        rng = np.random.default_rng(1)
        q = rng.normal(size=8)
        k = rng.normal(size=8)

        def dot_at(m, n):
            x = np.zeros((1, 1, 64, 8))
            x[0, 0, m] = q
            y = np.zeros((1, 1, 64, 8))
            y[0, 0, n] = k
            qr = rot.apply(Tensor(x), 64).data[0, 0, m]
            kr = rot.apply(Tensor(y), 64).data[0, 0, n]
            return qr @ kr

        np.testing.assert_allclose(dot_at(5, 3), dot_at(10, 8), atol=1e-9)
        np.testing.assert_allclose(dot_at(20, 11), dot_at(30, 21), atol=1e-9)

    def test_position_zero_identity(self):
        rot = RotaryEmbedding(head_dim=8, max_seq_len=4)
        x = np.random.default_rng(2).normal(size=(1, 1, 1, 8))
        np.testing.assert_allclose(rot.apply(Tensor(x), 1).data, x, atol=1e-12)

    def test_partial_rotary(self):
        rot = RotaryEmbedding(head_dim=8, max_seq_len=16, rotary_pct=0.5)
        assert rot.rotary_dim == 4
        x = np.random.default_rng(3).normal(size=(1, 1, 8, 8))
        y = rot.apply(Tensor(x), 8).data
        # Pass-through channels are untouched.
        np.testing.assert_allclose(y[..., 4:], x[..., 4:], atol=1e-12)

    def test_odd_head_dim_rejected(self):
        with pytest.raises(ValueError):
            RotaryEmbedding(head_dim=7, max_seq_len=8)

    def test_seq_too_long_rejected(self):
        rot = RotaryEmbedding(head_dim=8, max_seq_len=4)
        with pytest.raises(ValueError):
            rot.apply(Tensor(np.zeros((1, 1, 8, 8))), 8)


class TestCausalSelfAttention:
    def test_output_shape(self):
        attn = CausalSelfAttention(32, 4, max_seq_len=16)
        out = attn(Tensor(np.random.default_rng(0).normal(size=(2, 10, 32))))
        assert out.shape == (2, 10, 32)

    def test_causality(self):
        """Changing a future token must not affect earlier outputs."""
        attn = CausalSelfAttention(16, 2, max_seq_len=8)
        attn.eval()
        rng = np.random.default_rng(4)
        x = rng.normal(size=(1, 6, 16))
        base = attn(Tensor(x)).data
        x2 = x.copy()
        x2[0, 5] += 10.0
        pert = attn(Tensor(x2)).data
        np.testing.assert_allclose(pert[0, :5], base[0, :5], atol=1e-10)
        assert not np.allclose(pert[0, 5], base[0, 5])

    def test_flash_path_matches_standard_in_eval(self):
        rng = np.random.default_rng(5)
        std = CausalSelfAttention(32, 4, max_seq_len=16, flash=0,
                                  rng=np.random.default_rng(9))
        fla = CausalSelfAttention(32, 4, max_seq_len=16, flash=1,
                                  rng=np.random.default_rng(9))
        fla.load_state_dict(std.state_dict())
        std.eval(); fla.eval()
        x = rng.normal(size=(1, 12, 32))
        np.testing.assert_allclose(fla(Tensor(x)).data, std(Tensor(x)).data,
                                   atol=1e-8)

    def test_flash_training_falls_back_to_standard(self):
        """Flash path is forward-only; in training mode grads must flow."""
        attn = CausalSelfAttention(16, 2, max_seq_len=8, flash=2)
        attn.train()
        x = Tensor(np.random.default_rng(6).normal(size=(1, 4, 16)),
                   requires_grad=True)
        attn(x).sum().backward()
        assert x.grad is not None and np.isfinite(x.grad).all()

    def test_grads_reach_qkv_weights(self):
        attn = CausalSelfAttention(16, 4, max_seq_len=8)
        attn(Tensor(np.random.default_rng(7).normal(size=(2, 8, 16)))).sum().backward()
        assert attn.qkv.weight.grad is not None
        assert np.abs(attn.qkv.weight.grad).max() > 0

    def test_invalid_head_split(self):
        with pytest.raises(ValueError):
            CausalSelfAttention(30, 4, max_seq_len=8)
